"""Chaos: replicas are never wrong, only stale.

Seeded fault storms fire across the replication path -- the subscribe
handshake and batch shipping on the primary (``repl.subscribe`` /
``repl.ship``), snapshot bootstrap and batch application on the
replica (``repl.bootstrap`` / ``repl.apply``) -- plus the ordinary
server stages, while a writer streams atomic pair-batches into the
primary and readers hammer the replica.  Whatever the schedule kills:

* **never wrong**: every answer a replica returned is *exactly* the
  scratch derivation over the primary's change-log prefix at the
  ``primary_cursor`` the answer was proven at -- stale is allowed,
  divergent is not;
* **only whole batches**: no replica answer tears a pair (shipping
  stops at committed-batch boundaries; a faulted apply rolls the whole
  span back);
* **convergence**: once the storm lifts, the replica catches up to the
  primary's head and both serve identical answers, and a primary
  *restart* (new change-log epoch) forces a full re-bootstrap that
  converges to identical ``Query.objects`` denotations.

Runs under ``-m property`` with a fixed ``--hypothesis-seed`` in CI so
a red schedule is reproducible locally with the same flag.
"""

import asyncio

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.lang.parser import parse_program
from repro.oodb.checkpoint import _apply_entry
from repro.oodb.database import Database
from repro.query import Query
from repro.server import Client, ClientError, RetryPolicy, Server, \
    ServerConfig
from repro.testing import inject, inject_random
from repro.testing.faults import SITES

pytestmark = pytest.mark.property

RULES = """
    X[desc ->> {Y}] <- X[kids ->> {Y}].
    X[desc ->> {Y}] <- X..desc[kids ->> {Y}].
"""

QUERY = "peter[desc ->> {X}]"

#: The replication path plus the ordinary serving stages on both ends.
REPL_SITES = tuple(sorted(
    site for site in SITES
    if site.startswith(("repl.", "server."))))


def pair_batches():
    inserts = [
        [["+set", "kids", "peter", [], f"c{i}"],
         ["+set", "kids", f"c{i}", [], f"g{i}"]]
        for i in range(6)
    ]
    retracts = [
        [["-set", "kids", "peter", [], "c0"],
         ["-set", "kids", "c0", [], "g0"]]
    ]
    return inserts + retracts


def seeded_db():
    db = Database()
    kids = db.obj("kids")
    db.assert_set_member(kids, db.obj("peter"), (), db.obj("tim"))
    db.assert_set_member(kids, db.obj("tim"), (), db.obj("tom"))
    return db


def assert_untorn(answers):
    for i in range(6):
        assert (f"c{i}" in answers) == (f"g{i}" in answers), (
            f"torn replica snapshot: {sorted(answers)}")


def replica_config(primary):
    host, port = primary.address
    return ServerConfig(port=0, replica_of=f"{host}:{port}",
                        repl_poll_ms=20.0, repl_retry_base_ms=5.0,
                        repl_retry_cap_ms=50.0)


def answers_at(program, entries):
    """Unfaulted scratch derivation over a primary log prefix."""
    oracle = seeded_db()
    for sign, fact in entries:
        _apply_entry(oracle, sign, fact)
    scratch = Query(oracle, program=program, incremental=False)
    return frozenset(a.values_dict()["X"] for a in scratch.all(QUERY))


async def wait_until(predicate, timeout=15.0, message="condition"):
    loop = asyncio.get_running_loop()
    deadline = loop.time() + timeout
    while not predicate():
        if loop.time() >= deadline:
            raise AssertionError(f"timed out waiting for {message}")
        await asyncio.sleep(0.02)


async def replica_reader(host, port, rounds, observed):
    """Read the replica, recording (proof cursor, answer) pairs."""
    for _ in range(rounds):
        try:
            async with Client(host, port,
                              retry=RetryPolicy(attempts=2,
                                                base_ms=1.0)) as client:
                response = await client.query(QUERY, timeout_ms=2_000)
                observed.append((
                    response["primary_cursor"],
                    frozenset(a["X"] for a in response["answers"])))
        except ClientError:
            pass  # faulted/stale; the never-wrong check is below
        await asyncio.sleep(0)


async def primary_writer(host, port, batches):
    for batch in batches:
        try:
            async with Client(host, port,
                              retry=RetryPolicy(attempts=2,
                                                base_ms=1.0)) as client:
                await client.write(batch)
        except ClientError:
            pass  # rolled back on the primary; prefix oracles still hold
        await asyncio.sleep(0)


@given(seed=st.integers(0, 2 ** 16),
       rate=st.sampled_from((0.02, 0.1)))
@settings(max_examples=6, deadline=None)
def test_replica_is_never_wrong_only_stale(seed, rate):
    db = seeded_db()
    program = parse_program(RULES)
    observed = []
    post = {}

    async def main():
        async with Server(db, program=program,
                          config=ServerConfig(port=0)) as primary:
            # Pin the primary's log at 0 so ``entries[:cursor]`` keeps
            # addressing absolute cursors for the oracle replay below.
            anchor = db.held_changes(cursor=0)
            async with Server(Database(), program=program,
                              config=replica_config(primary)) as replica:
                rhost, rport = replica.address
                phost, pport = primary.address
                with inject_random(seed=seed, rate=rate,
                                   sites=REPL_SITES):
                    await asyncio.gather(
                        primary_writer(phost, pport, pair_batches()),
                        *(replica_reader(rhost, rport, 4, observed)
                          for _ in range(4)))
                # Storm over: the stream must converge to the head.
                head = db.change_log.cursor()
                await wait_until(
                    lambda: replica.replicator.applied == head,
                    message="replica catch-up")
                async with Client(rhost, rport) as client:
                    response = await client.query(QUERY)
                    observed.append((
                        response["primary_cursor"],
                        frozenset(a["X"] for a in response["answers"])))
                    health = await client.health()
                    assert health["role"] == "replica"
                    assert health["applied_cursor"] == head
                post["entries"] = list(db.change_log.entries)
                post["rollbacks"] = replica.stats.rollbacks
                post["reboots"] = replica.stats.repl_rebootstraps
            anchor.release()

    asyncio.run(main())

    # Never wrong: each observed answer is exactly the unfaulted
    # derivation at its proof cursor -- and never a torn pair.
    entries = post["entries"]
    oracles = {}
    for cursor, answers in observed:
        assert_untorn(answers)
        if cursor not in oracles:
            oracles[cursor] = answers_at(program, entries[:cursor])
        assert answers == oracles[cursor], (
            f"replica diverged at cursor {cursor}")
    # The final (converged) observation is the full-log derivation.
    final_cursor, final_answers = observed[-1]
    assert final_cursor == len(entries)
    assert final_answers == answers_at(program, entries)


@given(seed=st.integers(0, 2 ** 16))
@settings(max_examples=5, deadline=None)
def test_apply_faults_roll_replica_batches_back_whole(seed):
    """Aim the storm at ``repl.apply`` alone at a brutal rate: every
    faulted application rolls the whole span back (the replica's log
    never holds half a shipped batch) and the stream still converges
    once the plan lifts."""
    db = seeded_db()
    program = parse_program(RULES)
    post = {}

    async def main():
        async with Server(db, program=program,
                          config=ServerConfig(port=0)) as primary:
            phost, pport = primary.address
            async with Server(Database(), program=program,
                              config=replica_config(primary)) as replica:
                with inject_random(seed=seed, rate=0.5,
                                   sites=("repl.apply",)) as plan:
                    async with Client(phost, pport) as writer:
                        for batch in pair_batches():
                            await writer.write(batch)
                    # Let the storm chew on the stream for a while;
                    # every faulted apply must roll back cleanly.
                    await asyncio.sleep(0.3)
                    post["hits"] = plan.counts.get("repl.apply", 0)
                head = db.change_log.cursor()
                await wait_until(
                    lambda: replica.replicator.applied == head,
                    message="replica catch-up after apply faults")
                rhost, rport = replica.address
                async with Client(rhost, rport) as client:
                    response = await client.query(QUERY)
                    post["answers"] = frozenset(
                        a["X"] for a in response["answers"])
                post["rollbacks"] = replica.stats.rollbacks
                # The replica's own log ends exactly at the applied
                # cursor: a torn apply would leave a dangling suffix.
                rlog = replica.database.change_log
                assert rlog.in_sync(replica.database.data_version(),
                                    rlog.cursor())

    asyncio.run(main())

    assert post["hits"] > 0, "the storm never crossed repl.apply"
    assert_untorn(post["answers"])
    scratch = Query(db, program=program, incremental=False)
    assert post["answers"] == frozenset(
        a.values_dict()["X"] for a in scratch.all(QUERY))
    # (The seeded schedule may not have *fired* at any crossing --
    # post["rollbacks"] can be zero; the guaranteed-rollback case is
    # the targeted test below.)


def test_a_targeted_apply_fault_rolls_back_then_recovers():
    """Deterministically kill the replica's first apply: the whole
    span rolls back (one counted rollback, nothing half-applied) and
    the retry converges to the primary's exact answer."""
    db = seeded_db()
    program = parse_program(RULES)
    post = {}

    async def main():
        async with Server(db, program=program,
                          config=ServerConfig(port=0)) as primary:
            phost, pport = primary.address
            async with Server(Database(), program=program,
                              config=replica_config(primary)) as replica:
                # nth=2: the first entry of the pair lands, then the
                # fault -- the rollback must undo the landed entry too.
                with inject("repl.apply", nth=2):
                    async with Client(phost, pport) as writer:
                        await writer.write(
                            [["+set", "kids", "peter", [], "c0"],
                             ["+set", "kids", "c0", [], "g0"]])
                    await wait_until(
                        lambda: replica.stats.rollbacks >= 1,
                        message="the injected apply fault")
                head = db.change_log.cursor()
                await wait_until(
                    lambda: replica.replicator.applied == head,
                    message="retry after the rollback")
                rhost, rport = replica.address
                async with Client(rhost, rport) as client:
                    response = await client.query(QUERY)
                    post["answers"] = frozenset(
                        a["X"] for a in response["answers"])
                post["rollbacks"] = replica.stats.rollbacks
                post["applied"] = replica.stats.repl_entries_applied

    asyncio.run(main())

    assert post["rollbacks"] == 1
    assert {"c0", "g0"} <= post["answers"]
    assert_untorn(post["answers"])
    # The retried batch landed once, not twice.
    assert post["applied"] == 2


@given(seed=st.integers(0, 3))
@settings(max_examples=4, deadline=None)
def test_primary_restart_forces_rebootstrap_and_convergence(seed):
    """Kill the primary and bring up a *different* one on the same
    port: the fresh change-log epoch makes the replica's cursors
    unservable, so it must fully re-bootstrap -- and it converges to
    the new primary's exact denotations."""
    program = parse_program(RULES)
    post = {}

    async def main():
        first = seeded_db()
        primary = await Server(first, program=program,
                               config=ServerConfig(port=0)).start()
        host, port = primary.address
        replica = await Server(Database(), program=program,
                               config=replica_config(primary)).start()
        try:
            async with Client(host, port) as writer:
                await writer.write(
                    [["+set", "kids", "peter", [], "early"],
                     ["+set", "kids", "early", [], "bird"]])
            await wait_until(
                lambda: replica.replicator.applied == 2,
                message="pre-restart catch-up")
            await primary.shutdown()

            # A different world on the same address: seeded base plus
            # a divergent write the replica has never seen.
            second = seeded_db()
            kids = second.obj("kids")
            second.assert_set_member(kids, second.obj("peter"), (),
                                     second.obj(f"reborn{seed}"))
            primary = await Server(second, program=program,
                                   config=ServerConfig(
                                       host=host, port=port)).start()
            await wait_until(
                lambda: replica.stats.repl_rebootstraps >= 1,
                message="re-bootstrap after primary restart")
            async with Client(host, port) as writer:
                await writer.write(
                    [["+set", "kids", "peter", [], "late"],
                     ["+set", "kids", "late", [], "comer"]])
            head = second.change_log.cursor()
            await wait_until(
                lambda: replica.replicator.applied == head,
                message="post-restart catch-up")

            # Identical denotations, computed scratch on both sides.
            wanted = Query(second, program=program,
                           incremental=False).objects("peter..desc")
            got = Query(replica.database, program=program,
                        incremental=False).objects("peter..desc")
            assert got == wanted
            names = {oid.value for oid in got}
            assert f"reborn{seed}" in names and "comer" in names
            assert "early" not in names  # the old epoch's world is gone
            rhost, rport = replica.address
            async with Client(rhost, rport) as client:
                post["answers"] = frozenset(
                    a["X"] for a in (await client.query(QUERY))["answers"])
                post["stats"] = await client.stats()
        finally:
            await replica.shutdown()
            await primary.shutdown()

    asyncio.run(main())

    assert "late" in post["answers"] and "early" not in post["answers"]
    assert post["stats"]["replication"]["role"] == "replica"
    assert post["stats"]["repl_rebootstraps"] >= 1
