"""Integration: concurrent readers observe only prefix-consistent states.

A swarm of reader clients hammers the server with a recursive query
while one writer client applies a known sequence of atomic change
batches.  Because the maintainer holds the write gate exclusively and
every batch is all-or-nothing, each answer must equal the query result
over *some prefix* of the batch sequence -- never a torn intermediate
state, never a state that mixes two batches.

The expected prefix states are derived independently here, by applying
the same batches to a scratch database and evaluating with a scratch
(non-incremental) Query, so the assertion is differential: the served,
memoised, concurrently-maintained answers against a sequential oracle.
"""

import asyncio

import pytest

from repro.lang.parser import parse_program
from repro.oodb.database import Database
from repro.query import Query
from repro.server import Client, Server, ServerConfig

RULES = """
    X[desc ->> {Y}] <- X[kids ->> {Y}].
    X[desc ->> {Y}] <- X..desc[kids ->> {Y}].
"""

QUERY = "peter[desc ->> {X}]"

#: Batches the writer applies in order.  Each inserts a *pair* of kids
#: atomically (a direct child of peter and a grandchild below it), so a
#: torn batch is detectable: the child without its grandchild.
BATCHES = [
    [["+set", "kids", "peter", [], f"c{i}"],
     ["+set", "kids", f"c{i}", [], f"g{i}"]]
    for i in range(10)
]

READERS = 4


def seeded_db():
    db = Database()
    kids = db.obj("kids")
    db.assert_set_member(kids, db.obj("peter"), (), db.obj("tim"))
    db.assert_set_member(kids, db.obj("tim"), (), db.obj("tom"))
    return db


def apply_batch_locally(db, batch):
    for tag, member_set, owner, args, member in batch:
        assert tag == "+set"
        db.assert_set_member(db.obj(member_set), db.obj(owner),
                             tuple(args), db.obj(member))


def expected_prefix_states():
    """Answer set of QUERY after 0, 1, ... len(BATCHES) batches."""
    db = seeded_db()
    program = parse_program(RULES)

    def answers():
        scratch = Query(db, program=program, incremental=False)
        return frozenset(a.values_dict()["X"] for a in scratch.all(QUERY))

    states = [answers()]
    for batch in BATCHES:
        apply_batch_locally(db, batch)
        states.append(answers())
    return states


class TestConcurrentReadersDuringMaintenance:
    def test_every_answer_is_a_prefix_state(self):
        db = seeded_db()
        start_version = db.data_version()
        prefix_states = expected_prefix_states()
        observed = []          # (frozenset answers, version, cursor)
        writer_done = asyncio.Event()

        async def reader(host, port):
            async with Client(host, port) as client:
                while not writer_done.is_set():
                    response = await client.query(QUERY)
                    observed.append((
                        frozenset(a["X"] for a in response["answers"]),
                        response["version"], response["cursor"]))
                    await asyncio.sleep(0)

        async def writer(host, port):
            async with Client(host, port) as client:
                for batch in BATCHES:
                    response = await client.write(batch)
                    assert response["applied"] == len(batch)
                    # Let readers interleave between batches.
                    await asyncio.sleep(0.002)
            writer_done.set()

        async def main():
            config = ServerConfig(max_inflight=READERS)
            async with Server(db, program=parse_program(RULES),
                              config=config) as server:
                host, port = server.address
                await asyncio.gather(
                    writer(host, port),
                    *(reader(host, port) for _ in range(READERS)))
                final = await Client(host, port).query(QUERY)
                observed.append((
                    frozenset(a["X"] for a in final["answers"]),
                    final["version"], final["cursor"]))

        asyncio.run(main())

        assert len(observed) > len(BATCHES)  # readers really interleaved
        for answers, version, cursor in observed:
            # Snapshot isolation: the answer matches a whole-batch
            # prefix of the write sequence, nothing in between.
            assert answers in prefix_states, (
                f"torn snapshot: {sorted(answers)} matches no prefix")
            # The reported (version, cursor) pair is the snapshot's
            # proof: cursor entries past the start version.
            assert version == start_version + cursor
        # The last read (after the writer finished) saw everything.
        assert observed[-1][0] == prefix_states[-1]

    def test_reader_snapshots_are_monotone_per_connection(self):
        """One connection issuing sequential queries never travels back
        in time: each answer reflects at least as many batches as the
        previous one."""
        db = seeded_db()
        prefix_states = expected_prefix_states()
        per_reader = [[] for _ in range(READERS)]
        writer_done = asyncio.Event()

        async def reader(host, port, sink):
            async with Client(host, port) as client:
                while not writer_done.is_set():
                    response = await client.query(QUERY)
                    sink.append(frozenset(
                        a["X"] for a in response["answers"]))
                    await asyncio.sleep(0)

        async def writer(host, port):
            async with Client(host, port) as client:
                for batch in BATCHES:
                    await client.write(batch)
                    await asyncio.sleep(0.002)
            writer_done.set()

        async def main():
            async with Server(db, program=parse_program(RULES)) as server:
                host, port = server.address
                await asyncio.gather(
                    writer(host, port),
                    *(reader(host, port, sink) for sink in per_reader))

        asyncio.run(main())

        for sink in per_reader:
            indexes = [prefix_states.index(answers) for answers in sink]
            assert indexes == sorted(indexes)

    def test_log_arithmetic_holds_after_the_run(self):
        db = seeded_db()
        writer_done = asyncio.Event()

        async def reader(host, port):
            async with Client(host, port) as client:
                while not writer_done.is_set():
                    await client.query(QUERY)
                    await asyncio.sleep(0)

        async def writer(host, port):
            async with Client(host, port) as client:
                for batch in BATCHES:
                    await client.write(batch)
            writer_done.set()

        async def main():
            async with Server(db, program=parse_program(RULES)) as server:
                host, port = server.address
                await asyncio.gather(writer(host, port),
                                     *(reader(host, port)
                                       for _ in range(2)))
                stats = await Client(host, port).stats()
                assert stats["writes"] == len(BATCHES)
                assert stats["rollbacks"] == 0

        asyncio.run(main())

        log = db.change_log
        assert log.in_sync(db.data_version(), log.cursor())
        # Shutdown trimmed down to the memo low-water mark; dropping the
        # memos (the only remaining legitimate hold) frees the rest.
        assert db.snapshot_lag() == 0
