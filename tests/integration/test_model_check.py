"""Soundness: the engine's fixpoint model-checks against Definition 5.

After evaluation, every rule of the program must be *entailed* by the
resulting database (for all valuations, body implies head).  The
:func:`repro.core.entailment.rule_holds` oracle enumerates valuations,
so this is an exponential but definition-faithful cross-check of the
whole engine pipeline on small programs.
"""

import pytest

from repro.core.entailment import rule_holds
from repro.engine import Engine
from repro.lang.parser import parse_program
from repro.oodb.database import Database

PROGRAMS = {
    "intensional-method": """
        car1 : automobile. car1[engine -> e1]. e1[power -> 90].
        X[power -> Y] <- X : automobile.engine[power -> Y].
    """,
    "virtual-boss": """
        p1 : employee. p1[worksFor -> cs1].
        X.boss[worksFor -> D] <- X : employee[worksFor -> D].
    """,
    "address-view": """
        ann : person. ann[street -> mainSt; city -> ny].
        X.address[street -> X.street; city -> X.city] <- X : person.
    """,
    "desc-closure": """
        peter[kids ->> {tim, mary}].
        tim[kids ->> {sally}].
        X[desc ->> {Y}] <- X[kids ->> {Y}].
        X[desc ->> {Y}] <- X..desc[kids ->> {Y}].
    """,
    "stratified-superset": """
        h1 : helper.
        p1[assistants ->> {X}] <- X : helper.
        p2[friends ->> {h1, extra}].
        X[ok -> yes] <- X[friends ->> p1..assistants].
    """,
    "comparison": """
        p1[age -> 70]. p2[age -> 30].
        X[senior -> yes] <- X[age -> A], A >= 65.
    """,
    "head-inclusion": """
        p1[assistants ->> {a1, a2}].
        p2[friends ->> p1..assistants] <- p2 : anchor.
        p2 : anchor.
    """,
}


@pytest.mark.parametrize("name", sorted(PROGRAMS))
def test_fixpoint_is_a_model(name):
    program = parse_program(PROGRAMS[name])
    out = Engine(Database(), program).run()
    for rule in program:
        assert rule_holds(out, rule, max_assignments=2_000_000), \
            f"rule not entailed after fixpoint: {rule}"
