"""Shared fixtures for the paper-example integration tests."""

import pytest

from repro.oodb.database import Database


@pytest.fixture
def company_db() -> Database:
    """A hand-built company database covering every Section 1/2 query.

    Small enough that expected answers can be read off by eye:

    - mary: 30, newYork, boss peter (peter lives in newYork too),
      vehicles car1 (red automobile, 4 cyl, by gm) + bike1 (vehicle);
    - john: 45, boston, boss peter, vehicles car2 (blue, 6 cyl, by ford);
    - peter: manager, newYork, vehicles car3 (red, 8 cyl, by gm);
      gm sits in detroit and peter presides over it.
    """
    db = Database()
    db.subclass("automobile", "vehicle")
    db.subclass("manager", "employee")

    db.add_object("gm", classes=["company"],
                  scalars={"city": "detroit", "president": "peter"})
    db.add_object("ford", classes=["company"],
                  scalars={"city": "boston", "president": "john"})

    db.add_object("car1", classes=["automobile"],
                  scalars={"color": "red", "cylinders": 4,
                           "producedBy": "gm"})
    db.add_object("car2", classes=["automobile"],
                  scalars={"color": "blue", "cylinders": 6,
                           "producedBy": "ford"})
    db.add_object("car3", classes=["automobile"],
                  scalars={"color": "red", "cylinders": 8,
                           "producedBy": "gm"})
    db.add_object("bike1", classes=["vehicle"],
                  scalars={"color": "green"})

    db.add_object("mary", classes=["employee"],
                  scalars={"age": 30, "city": "newYork", "boss": "peter"},
                  sets={"vehicles": ["car1", "bike1"]})
    db.add_object("john", classes=["employee"],
                  scalars={"age": 45, "city": "boston", "boss": "peter"},
                  sets={"vehicles": ["car2"]})
    db.add_object("peter", classes=["manager"],
                  scalars={"age": 50, "city": "newYork"},
                  sets={"vehicles": ["car3"],
                        "assistants": ["mary", "john"]})
    return db
