"""Experiments E4.x / E5.x: Section 4 compositions and Section 5 semantics."""

import pytest

from repro.core.entailment import entails
from repro.core.valuation import VariableValuation, valuate
from repro.lang.parser import parse_reference
from repro.oodb.database import Database
from repro.oodb.oid import NamedOid
from repro.query import Query


def n(value):
    return NamedOid(value)


@pytest.fixture
def assistants_db():
    db = Database()
    db.add_object("p1", sets={"assistants": ["a1", "a2", "a3"],
                              "vehicles": ["v1", "v2"]})
    db.add_object("a1", scalars={"salary": 1000},
                  sets={"projects": ["prj1", "prj2"]})
    db.add_object("a2", scalars={"salary": 1000},
                  sets={"projects": ["prj2"]})
    db.add_object("a3", scalars={"salary": 2000})
    db.add_object("p2")
    p1 = db.lookup_name("p1")
    db.assert_scalar(n("paidFor"), p1, (n("v1"),), n(100))
    db.assert_scalar(n("paidFor"), p1, (n("v2"),), n(250))
    return db


class TestSection4Compositions:
    def test_salaries_of_assistants(self, assistants_db):
        # p1..assistants.salary == the set of salaries.
        got = Query(assistants_db).objects("p1..assistants.salary")
        assert got == {n(1000), n(2000)}

    def test_projects_of_assistants(self, assistants_db):
        got = Query(assistants_db).objects("p1..assistants..projects")
        assert got == {n("prj1"), n("prj2")}

    def test_paid_for_all_vehicles(self, assistants_db):
        got = Query(assistants_db).objects("p1.paidFor@(p1..vehicles)")
        assert got == {n(100), n(250)}

    def test_restricted_assistants(self, assistants_db):
        got = Query(assistants_db).objects(
            "p1..assistants[salary -> 1000]")
        assert got == {n("a1"), n("a2")}


class TestSection5Semantics:
    def test_set_reference_true_if_nonempty(self, assistants_db):
        assert entails(assistants_db, parse_reference(
            "p1..assistants[salary -> 1000]"))
        assert not entails(assistants_db, parse_reference(
            "p1..assistants[salary -> 777]"))

    def test_enum_binding_accesses_members_one_by_one(self, assistants_db):
        # The paper's prose suggests binding X to each qualifying
        # assistant; the idiomatic PathLog conjunction expresses exactly
        # that (X is a member AND satisfies the filter).
        rows = Query(assistants_db).all(
            "p1[assistants ->> {X}], X[salary -> 1000]", variables=["X"])
        assert {r.value("X") for r in rows} == {"a1", "a2"}

    def test_enum_molecule_element_follows_definition_4_not_the_prose(
            self, assistants_db):
        # DOCUMENTED PAPER INCONSISTENCY (see DESIGN.md): Section 5's
        # prose claims p1[assistants ->> {X[salary -> 1000]}] is true
        # only "if X is assigned such an assistant", but Definition 4
        # case 8 makes a non-denoting element DROP OUT of S, so for any
        # other X the superset is vacuous and the formula is still
        # entailed.  We implement the formal definition.
        rows = Query(assistants_db).all(
            "p1[assistants ->> {X[salary -> 1000]}]", variables=["X"])
        bound = {r.value("X") for r in rows}
        # qualifying assistants are answers ...
        assert {"a1", "a2"} <= bound
        # ... but so is every object that makes the element non-denoting.
        assert "p2" in bound

    def test_no_nested_sets(self):
        db = Database()
        db.add_object("john", sets={"kids": ["k1", "k2"]})
        db.add_object("k1", sets={"kids": ["g1", "g2"]})
        db.add_object("k2", sets={"kids": ["g3"]})
        grandkids = Query(db).objects("john..kids..kids")
        assert grandkids == {n("g1"), n("g2"), n("g3")}

    def test_undefined_path_is_false(self):
        db = Database()
        db.add_object("john")
        assert not entails(db, parse_reference("john.spouse"))
        assert not entails(db, parse_reference("john.spouse[]"))

    def test_valuation_matches_query_objects(self, assistants_db):
        ref = parse_reference("p1..assistants[salary -> 1000]")
        direct = valuate(ref, assistants_db, VariableValuation())
        via_query = Query(assistants_db).objects(ref)
        assert direct == via_query
