"""Chaos: the server survives random faults and rude disconnects.

Seeded :func:`~repro.testing.inject_random` plans fire at every server
stage (``server.accept`` / ``dispatch`` / ``maintain`` / ``respond``),
every maintenance phase, and the evaluation kernels -- while a swarm of
clients queries and writes concurrently and a few "rude" clients hang
up mid-request.  Whatever the schedule hits:

* the server keeps serving -- after the storm an unfaulted health
  check and query both succeed on a fresh connection;
* no torn snapshots -- every observed answer contains a batch's pair
  of facts together or not at all (batches are atomic even when the
  schedule kills the maintainer mid-batch and it rolls back);
* the change-log arithmetic stays provable (``ChangeLog.in_sync``);
* no leaked cursors -- once the per-request leases are gone and the
  memos dropped, the log trims to empty.  A reader that died to an
  injected fault or a disconnect must not leave a pin behind.

Runs under ``-m property`` with a fixed ``--hypothesis-seed`` in CI so
a red schedule is reproducible locally with the same flag.
"""

import asyncio

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.lang.parser import parse_program
from repro.oodb.database import Database
from repro.query import Query
from repro.server import Client, ClientError, RetryPolicy, Server, \
    ServerConfig
from repro.server.protocol import encode_frame
from repro.testing import inject_random
from repro.testing.faults import SITES

pytestmark = pytest.mark.property

RULES = """
    X[desc ->> {Y}] <- X[kids ->> {Y}].
    X[desc ->> {Y}] <- X..desc[kids ->> {Y}].
"""

QUERY = "peter[desc ->> {X}]"

#: Every site the server's request path can cross, plus the server's
#: own stages -- the widest blast radius the suite knows how to aim.
CHAOS_SITES = tuple(sorted(SITES))

#: Writer batches: each atomically inserts (or later retracts) a
#: child/grandchild *pair*, so a torn snapshot is detectable as a
#: child without its grandchild (or vice versa).
def pair_batches():
    inserts = [
        [["+set", "kids", "peter", [], f"c{i}"],
         ["+set", "kids", f"c{i}", [], f"g{i}"]]
        for i in range(6)
    ]
    retracts = [
        [["-set", "kids", "peter", [], "c0"],
         ["-set", "kids", "c0", [], "g0"]]
    ]
    return inserts + retracts


def seeded_db():
    db = Database()
    kids = db.obj("kids")
    db.assert_set_member(kids, db.obj("peter"), (), db.obj("tim"))
    db.assert_set_member(kids, db.obj("tim"), (), db.obj("tom"))
    return db


def assert_untorn(answers):
    """Each pair travels together: c{i} visible iff g{i} visible."""
    for i in range(6):
        assert (f"c{i}" in answers) == (f"g{i}" in answers), (
            f"torn snapshot: {sorted(answers)}")


async def chaos_reader(host, port, rounds, observed):
    """Query in a loop; reconnect through whatever the storm does."""
    for _ in range(rounds):
        try:
            async with Client(host, port,
                              retry=RetryPolicy(attempts=2,
                                                base_ms=1.0)) as client:
                response = await client.query(QUERY, timeout_ms=2_000)
                observed.append(frozenset(
                    a["X"] for a in response["answers"]))
        except ClientError:
            pass  # faulted away; the post-storm checks are the point
        await asyncio.sleep(0)


async def chaos_writer(host, port, batches):
    for batch in batches:
        try:
            async with Client(host, port,
                              retry=RetryPolicy(attempts=2,
                                                base_ms=1.0)) as client:
                await client.write(batch)
        except ClientError:
            pass  # rolled back server-side; atomicity is asserted below
        await asyncio.sleep(0)


async def rude_client(host, port):
    """Send a query frame and hang up before reading the answer."""
    try:
        reader, writer = await asyncio.open_connection(host, port)
        writer.write(encode_frame({"op": "query", "query": QUERY}))
        await writer.drain()
        writer.close()
    except (ConnectionError, OSError):
        pass


@given(seed=st.integers(0, 2 ** 16),
       rate=st.sampled_from((0.02, 0.1)))
@settings(max_examples=8, deadline=None)
def test_server_survives_fault_storms_and_disconnects(seed, rate):
    db = seeded_db()
    program = parse_program(RULES)
    observed = []
    post_storm = {}

    async def main():
        config = ServerConfig(max_inflight=4, max_queue=4,
                              drain_ms=2_000.0)
        async with Server(db, program=program, config=config) as server:
            host, port = server.address
            with inject_random(seed=seed, rate=rate, sites=CHAOS_SITES):
                await asyncio.gather(
                    chaos_writer(host, port, pair_batches()),
                    *(chaos_reader(host, port, 4, observed)
                      for _ in range(4)),
                    *(rude_client(host, port) for _ in range(3)))
            # Storm over: the plan is uninstalled, the server must
            # still answer on a brand-new connection.
            async with Client(host, port) as client:
                health = await client.health()
                assert health["ok"] and health["status"] == "ok"
                response = await client.query(QUERY)
                post_storm["answers"] = frozenset(
                    a["X"] for a in response["answers"])
                post_storm["stats"] = await client.stats()
            post_storm["server"] = server
        post_storm["shed"] = server.stats.shed

    asyncio.run(main())

    # No torn snapshots, during or after the storm.
    for answers in observed:
        assert_untorn(answers)
    assert_untorn(post_storm["answers"])
    # The post-storm answer matches an unfaulted scratch derivation
    # of whatever state the surviving batches produced.
    scratch = Query(db, program=program, incremental=False)
    assert post_storm["answers"] == frozenset(
        a.values_dict()["X"] for a in scratch.all(QUERY))
    # Every version bump is still explained by the log.
    log = db.change_log
    assert log.in_sync(db.data_version(), log.cursor())
    # No leaked cursors: the per-request leases all died with their
    # requests (even the faulted ones); dropping the memo hold -- the
    # one legitimate long-lived pin -- makes the log fully trimmable.
    server = post_storm["server"]
    server.query.forget()
    db.catalog()
    db.trim_changes()
    assert log.offset == log.cursor()
    assert log.entries == []
    # Shed requests (if any) were answered, not hung: the counters
    # reconcile -- every request either got a response or belonged to
    # a connection that dropped.
    stats = post_storm["stats"]
    assert stats["served"] <= stats["requests"]


@given(seed=st.integers(0, 2 ** 16))
@settings(max_examples=6, deadline=None)
def test_maintain_faults_roll_batches_back_whole(seed):
    """Aim the storm at the maintainer alone: every write either
    applies in full (both facts of the pair) or not at all, and the
    server reports the rollback instead of dying."""
    db = seeded_db()
    program = parse_program(RULES)
    results = []

    async def main():
        async with Server(db, program=program) as server:
            host, port = server.address
            with inject_random(seed=seed, rate=0.5,
                               sites=("server.maintain",
                                      "maintain.apply",
                                      "maintain.insert")):
                async with Client(host, port) as client:
                    for batch in pair_batches():
                        try:
                            response = await client.request(
                                {"op": "write", "changes": batch})
                            results.append(("ok", response["applied"]))
                        except ClientError as err:
                            results.append(("err", str(err)))
            # Storm over: the maintainer must still accept writes.
            async with Client(host, port) as client:
                recovery = await client.write(
                    [["+set", "kids", "peter", [], "after"],
                     ["+set", "kids", "after", [], "storm"]])
                assert recovery["applied"] == 2
                response = await client.query(QUERY)
                results.append(("final", frozenset(
                    a["X"] for a in response["answers"])))

    asyncio.run(main())

    final = dict(r for r in results if r[0] == "final")
    assert_untorn(final["final"])
    assert {"after", "storm"} <= final["final"]
    scratch = Query(db, program=program, incremental=False)
    assert final["final"] == frozenset(
        a.values_dict()["X"] for a in scratch.all(QUERY))
    # Every failed write died to the injected schedule (typed on the
    # wire as ``internal``), never to corrupted server state.
    for _, message in (r for r in results if r[0] == "err"):
        assert "injected fault" in message
    log = db.change_log
    assert log.in_sync(db.data_version(), log.cursor())
