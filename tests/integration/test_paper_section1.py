"""Experiments E1.1-E1.4: the Section 1 queries agree across languages.

The paper introduces the same information need in O2SQL (1.1), XSQL
(1.2), the calculus style of [VV93] (1.3), and then the variant with the
cylinder condition that forces XSQL into two paths (1.4).  These tests
pin the expected answers on the hand-built company database and the
cross-language agreement the paper implies.
"""

from repro.frontends import run_o2sql, run_xsql
from repro.query import Query

E11_O2SQL = """
    SELECT Y.color
    FROM X IN employee
    FROM Y IN X.vehicles
    WHERE Y IN automobile
"""

E12_XSQL = """
    SELECT Z
    FROM employee X, automobile Y
    WHERE X.vehicles[Y].color[Z]
"""

E13_CALCULUS = "X : employee..vehicles : automobile.color[Z]"

E14_XSQL = """
    SELECT Z
    FROM employee X, automobile Y
    WHERE X.vehicles[Y].color[Z] AND Y.cylinders[4]
"""


class TestE11:
    def test_expected_colors(self, company_db):
        rows = run_o2sql(company_db, E11_O2SQL)
        # employees' automobiles: car1 red, car2 blue, car3 red
        assert {r.value("Y.color") for r in rows} == {"red", "blue"}

    def test_non_automobile_vehicles_excluded(self, company_db):
        rows = run_o2sql(company_db, E11_O2SQL)
        assert "green" not in {r.value("Y.color") for r in rows}


class TestE12:
    def test_matches_o2sql(self, company_db):
        o2 = {r.value("Y.color") for r in run_o2sql(company_db, E11_O2SQL)}
        xs = {r.value("Z") for r in run_xsql(company_db, E12_XSQL)}
        assert o2 == xs


class TestE13:
    def test_calculus_style_matches(self, company_db):
        rows = Query(company_db).all(E13_CALCULUS, variables=["Z"])
        assert {r.value("Z") for r in rows} == {"red", "blue"}


class TestE14:
    def test_cylinder_condition_needs_second_path_in_xsql(self, company_db):
        rows = run_xsql(company_db, E14_XSQL)
        assert {r.value("Z") for r in rows} == {"red"}

    def test_compiles_to_two_where_conditions(self):
        from repro.frontends import compile_xsql

        compiled = compile_xsql(E14_XSQL, set_methods=frozenset({"vehicles"}))
        # 2 FROM literals + 2 WHERE literals: the conjunction the paper
        # says one-dimensional path languages are forced into.
        assert len(compiled.literals) == 4
