"""Experiment E2.4: the address view -- virtual objects with attributes."""

from repro.core.signatures import SignatureSet
from repro.engine import Engine
from repro.lang.parser import parse_program
from repro.oodb.database import Database
from repro.oodb.oid import NamedOid, VirtualOid
from repro.query import Query


def n(value):
    return NamedOid(value)


ADDRESS_RULE = """
    X.address[street -> X.street; city -> X.city] <- X : person.
"""


def people_db() -> Database:
    db = Database()
    db.add_object("ann", classes=["person"],
                  scalars={"street": "mainSt", "city": "newYork"})
    db.add_object("bob", classes=["person"],
                  scalars={"street": "elmSt", "city": "detroit"})
    db.add_object("cara", classes=["person"])  # attribute-less
    return db


class TestAddressView:
    def test_virtual_addresses_created(self):
        out = Engine(people_db(), parse_program(ADDRESS_RULE)).run()
        ann_addr = out.scalar_apply(n("address"), n("ann"))
        assert ann_addr == VirtualOid(n("address"), n("ann"))
        assert out.scalar_apply(n("street"), ann_addr) == n("mainSt")
        assert out.scalar_apply(n("city"), ann_addr) == n("newYork")

    def test_one_address_per_qualifying_person(self):
        out = Engine(people_db(), parse_program(ADDRESS_RULE)).run()
        assert out.virtual_count() == 2

    def test_attributeless_person_gets_no_address(self):
        # cara has neither street nor city: the head reads fail to
        # denote, so the rule cannot fire for her (guarded reading).
        out = Engine(people_db(), parse_program(ADDRESS_RULE)).run()
        assert out.scalar_apply(n("address"), n("cara")) is None

    def test_addresses_are_queryable_through_paths(self):
        out = Engine(people_db(), parse_program(ADDRESS_RULE)).run()
        rows = Query(out).all("X : person.address[city -> C]",
                              variables=["X", "C"])
        assert {(r.value("X"), r.value("C")) for r in rows} == {
            ("ann", "newYork"), ("bob", "detroit"),
        }

    def test_restructuring_is_stable_under_reevaluation(self):
        db = Engine(people_db(), parse_program(ADDRESS_RULE)).run()
        again = Engine(db, parse_program(ADDRESS_RULE)).run()
        assert again.virtual_count() == db.virtual_count()
        assert dict(again.scalars.items()) == dict(db.scalars.items())

    def test_signature_types_the_view(self):
        out = Engine(people_db(), parse_program(ADDRESS_RULE)).run()
        sigs = SignatureSet()
        sigs.declare_scalar("person", "address", (), "addressObj")
        sigs.declare_scalar("addressObj", "street", (), "string")
        sigs.declare_scalar("addressObj", "city", (), "string")
        sigs.type_virtual_objects(out)
        assert sigs.check_database(out) == []
        rows = Query(out).all("A : addressObj", variables=["A"])
        assert len(rows) == 2
