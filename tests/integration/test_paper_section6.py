"""Experiments E6.x: every rule program of Section 6, end to end."""

import pytest

from repro.datasets.genealogy import closure_edges, desc_rules, generic_tc_rules
from repro.engine import Engine
from repro.frontends import compile_xsql_view
from repro.lang.parser import parse_program
from repro.oodb.database import Database
from repro.oodb.oid import NamedOid, VirtualOid
from repro.query import Query


def n(value):
    return NamedOid(value)


def run(text_or_program, db=None):
    program = (parse_program(text_or_program)
               if isinstance(text_or_program, str) else text_or_program)
    return Engine(db or Database(), program).run()


class TestE60IntensionalPower:
    def test_power_derived_from_engine(self):
        out = run("""
            car1 : automobile. car1[engine -> e1]. e1[power -> 90].
            bike1 : vehicle.
            X[power -> Y] <- X : automobile.engine[power -> Y].
        """)
        assert out.scalar_apply(n("power"), n("car1")) == n(90)
        assert out.scalar_apply(n("power"), n("bike1")) is None
        assert out.virtual_count() == 0  # no virtual objects involved


class TestE61VirtualBoss:
    def test_boss_created_for_extensional_employee(self):
        out = run("""
            p1 : employee. p1[worksFor -> cs1].
            X.boss[worksFor -> D] <- X : employee[worksFor -> D].
        """)
        boss = out.scalar_apply(n("boss"), n("p1"))
        assert boss == VirtualOid(n("boss"), n("p1"))
        assert out.scalar_apply(n("worksFor"), boss) == n("cs1")

    def test_existing_boss_reused(self):
        out = run("""
            p1 : employee. p1[worksFor -> cs1]. p1[boss -> mary].
            X.boss[worksFor -> D] <- X : employee[worksFor -> D].
        """)
        assert out.scalar_apply(n("boss"), n("p1")) == n("mary")
        assert out.scalar_apply(n("worksFor"), n("mary")) == n("cs1")
        assert out.virtual_count() == 0


class TestE62ExistingBossesOnly:
    def test_no_virtual_objects(self):
        out = run("""
            p1 : employee. p1[worksFor -> cs1].
            p2 : employee. p2[worksFor -> cs2]. p2[boss -> b2].
            Z[worksFor -> D] <- X : employee[worksFor -> D].boss[Z].
        """)
        assert out.scalar_apply(n("worksFor"), n("b2")) == n("cs2")
        assert out.scalar_apply(n("boss"), n("p1")) is None
        assert out.virtual_count() == 0


class TestE63XsqlView:
    def test_view_equals_rule_6_1(self):
        db = Database()
        db.add_object("p1", classes=["employee"],
                      scalars={"worksFor": "cs1"})
        view = compile_xsql_view("""
            CREATE VIEW EmployeeBoss
            SELECT WorksFor = D
            FROM Employee X
            OID FUNCTION OF X
            WHERE X.WorksFor[D]
        """)
        out = Engine(db, [view]).run()
        # The view object is addressed as a METHOD application, not as
        # EmployeeBoss(p1): the paper's simplification.
        assert Query(out).objects("p1.employeeBoss.worksFor") == {n("cs1")}
        assert out.scalar_apply(n("employeeBoss"), n("p1")) == \
            VirtualOid(n("employeeBoss"), n("p1"))


class TestE64Desc:
    PAPER_FACTS = """
        peter[kids ->> {tim, mary}].
        tim[kids ->> {sally}].
        mary[kids ->> {tom, paul}].
    """

    def test_paper_family(self):
        db = run(self.PAPER_FACTS)
        out = run(desc_rules(), db=db)
        assert out.set_apply(n("desc"), n("peter")) == {
            n("tim"), n("mary"), n("sally"), n("tom"), n("paul"),
        }
        assert out.set_apply(n("desc"), n("mary")) == {n("tom"), n("paul")}

    def test_matches_networkx_on_random_forest(self):
        from repro.datasets import build_family

        db, graph = build_family(generations=5, branching=3, seed=17)
        out = run(desc_rules(), db=db)
        derived = {
            (subject.value, member.value)
            for (method, subject, _), members in out.sets.items()
            if method == n("desc")
            for member in members
        }
        assert derived == closure_edges(graph)


class TestE65GenericTc:
    def test_exact_paper_output(self):
        db = run(TestE64Desc.PAPER_FACTS)
        out = run(generic_tc_rules(), db=db)
        tc_kids = VirtualOid(n("tc"), n("kids"))
        assert out.scalar_apply(n("tc"), n("kids")) == tc_kids
        assert out.set_apply(tc_kids, n("peter")) == {
            n("tim"), n("mary"), n("sally"), n("tom"), n("paul"),
        }

    def test_generic_equals_specialised(self):
        from repro.datasets import build_family

        db, _ = build_family(generations=5, branching=2, seed=23)
        via_desc = run(desc_rules(), db=db)
        via_tc = run(generic_tc_rules(), db=db)
        tc_kids = VirtualOid(n("tc"), n("kids"))
        for person in db.universe():
            assert via_desc.set_apply(n("desc"), person) == \
                via_tc.set_apply(tc_kids, person)


class TestE66StratifiedFriends:
    def test_paper_friends_rule(self):
        # Section 6: "... <- X[friends ->> p1..assistants] should only
        # be applied once the set of p1's assistants is complete."
        out = run("""
            h1 : helper. h2 : helper.
            p1[assistants ->> {X}] <- X : helper.
            p2[friends ->> {h1, h2, h3}].
            X[welcoming -> yes] <- X[friends ->> p1..assistants].
        """)
        assert out.scalar_apply(n("welcoming"), n("p2")) == n("yes")

    def test_incomplete_set_would_not_qualify(self):
        out = run("""
            h1 : helper. h2 : helper.
            p1[assistants ->> {X}] <- X : helper.
            p2[friends ->> {h1}].
            X[welcoming -> yes] <- X[friends ->> p1..assistants].
        """)
        assert out.scalar_apply(n("welcoming"), n("p2")) is None
