"""The documented divergences: direct semantics vs. naive flattening.

Definition 4 has two corners a conjunction-of-paths translation cannot
express (the paper's argument for a direct semantics):

- case 7: ``t0[m ->> s]`` holds *vacuously* when ``s`` denotes nothing;
- case 8: enumerated elements that fail to denote drop out of ``S``.

The strict flattener refuses these constructs; these tests pin both the
refusal and the direct evaluator's behaviour, plus the agreement of the
two pipelines on the shared fragment.
"""

import pytest

from repro.core.entailment import entails
from repro.core.valuation import VariableValuation, valuate
from repro.engine.solve import exists, solve
from repro.flogic.flatten import FlattenUnsupported, flatten_reference, flatten_strict
from repro.lang.parser import parse_reference
from repro.oodb.database import Database
from repro.oodb.oid import NamedOid


def n(value):
    return NamedOid(value)


@pytest.fixture
def db():
    db = Database()
    db.add_object("p1", sets={"assistants": ["a1"]})
    db.add_object("p2", sets={"friends": ["a1"]})
    db.add_object("john")  # spouse undefined, assistants undefined
    return db


class TestVacuousSuperset:
    def test_direct_semantics_is_vacuously_true(self, db):
        ref = parse_reference("p2[friends ->> john..assistants]")
        assert entails(db, ref)

    def test_engine_pipeline_agrees_with_direct(self, db):
        ref = parse_reference("p2[friends ->> john..assistants]")
        flattened = flatten_reference(ref)
        assert exists(db, flattened.atoms)

    def test_strict_flattening_refuses(self, db):
        with pytest.raises(FlattenUnsupported):
            flatten_strict(parse_reference(
                "p2[friends ->> john..assistants]"))


class TestDroppedEnumElements:
    def test_direct_semantics_drops_nondenoting_elements(self, db):
        ref = parse_reference("p2[friends ->> {a1, john.spouse}]")
        assert entails(db, ref)

    def test_engine_pipeline_agrees(self, db):
        ref = parse_reference("p2[friends ->> {a1, john.spouse}]")
        assert exists(db, flatten_reference(ref).atoms)

    def test_naive_conjunction_would_differ(self, db):
        # The naive one-dimensional translation of
        # ``p2[friends ->> {a1, john.spouse}]`` is the conjunction
        # "S = john.spouse AND S in friends(p2) AND a1 in friends(p2)",
        # which requires john.spouse to DENOTE.  It is false here, while
        # the paper's direct semantics (element drops out) is true.
        direct = entails(db, parse_reference(
            "p2[friends ->> {a1, john.spouse}]"))
        membership_part = exists(db, flatten_reference(
            parse_reference("p2[friends ->> {a1}]")).atoms)
        spouse_denotes = exists(db, flatten_reference(
            parse_reference("john.spouse")).atoms)
        naive = membership_part and spouse_denotes
        assert direct is True
        assert naive is False


class TestSharedFragmentAgreement:
    @pytest.mark.parametrize("text", [
        "p1..assistants",
        "p1..assistants[salary -> 1000]",
        "p2[friends ->> {a1}]",
        "john.spouse",
        "p1 : person",
    ])
    def test_direct_equals_strict_flatten(self, db, text):
        ref = parse_reference(text)
        direct = entails(db, ref, VariableValuation())
        try:
            flattened = flatten_strict(ref)
        except FlattenUnsupported:  # pragma: no cover - not in this list
            raise AssertionError("fragment should be strict-flattenable")
        assert direct == exists(db, flattened.atoms)
