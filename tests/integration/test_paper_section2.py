"""Experiments E2.1-E2.3, E2.5: the two-dimensional path expressions.

(2.1)/(2.2): one PathLog reference carries both dimensions; equals the
XSQL conjunction (1.4).  (2.3): a nested path inside a filter (the
boss's city).  E2.5: the Section 2 manager query as a single reference
vs. the three-clause O2SQL form.
"""

from repro.frontends import run_o2sql, run_xsql
from repro.query import Query

E21 = ("X : employee[age -> 30; city -> newYork]"
       "..vehicles : automobile[cylinders -> 4].color[Z]")

E22_XSQL = """
    SELECT Z
    FROM employee X, automobile Y
    WHERE X[age -> 30; city -> newYork].vehicles[cylinders -> 4][Y].color[Z]
"""

E23 = "X : employee[city -> X.boss.city]..vehicles : automobile.color[Z]"

E25_PATHLOG = ("X : manager..vehicles[color -> red]"
               ".producedBy[city -> detroit; president -> X]")

E25_O2SQL = """
    SELECT X
    FROM X IN manager
    FROM Y IN X.vehicles
    WHERE Y.color = red
      AND Y.producedBy.city = detroit
      AND Y.producedBy.president = X
"""


class TestE21:
    def test_expected_answer(self, company_db):
        rows = Query(company_db).all(E21)
        assert {(r.value("X"), r.value("Z")) for r in rows} == {
            ("mary", "red"),
        }

    def test_one_reference_equals_xsql_conjunction(self, company_db):
        single = {r.value("Z") for r in Query(company_db).all(E21)}
        conjunction = {r.value("Z")
                       for r in run_xsql(company_db, E22_XSQL)}
        assert single == conjunction == {"red"}


class TestE23:
    def test_nested_path_in_filter(self, company_db):
        # mary lives in newYork, boss peter lives in newYork -> matches;
        # john lives in boston, boss peter in newYork -> excluded.
        rows = Query(company_db).all(E23, variables=["X"])
        assert {r.value("X") for r in rows} == {"mary"}

    def test_against_explicit_join(self, company_db):
        explicit = Query(company_db).all(
            "X : employee[city -> C], X.boss[city -> C]",
            variables=["X"],
        )
        nested = Query(company_db).all(
            "X : employee[city -> X.boss.city]", variables=["X"])
        assert {r.value("X") for r in explicit} == \
            {r.value("X") for r in nested}


class TestE25:
    def test_expected_manager(self, company_db):
        rows = Query(company_db).all(E25_PATHLOG, variables=["X"])
        assert {r.value("X") for r in rows} == {"peter"}

    def test_single_reference_equals_o2sql(self, company_db):
        pathlog = {r.value("X")
                   for r in Query(company_db).all(E25_PATHLOG,
                                                  variables=["X"])}
        o2sql = {r.value("X") for r in run_o2sql(company_db, E25_O2SQL)}
        assert pathlog == o2sql == {"peter"}

    def test_presidency_condition_matters(self, company_db):
        # john has a blue car from ford/boston: no match even though he
        # presides over ford.
        rows = Query(company_db).all(E25_PATHLOG, variables=["X"])
        assert "john" not in {r.value("X") for r in rows}
