"""Planner tests: estimates, static orders, plan caching, EXPLAIN."""

import pytest

from repro.core.ast import Name, Var
from repro.engine import Engine
from repro.engine.explain import explain_conjunction
from repro.engine.planner import (
    PlanCache,
    build_plan,
    estimate_atom,
    relevant_bound,
)
from repro.errors import EvaluationError
from repro.flogic.atoms import IsaAtom, ScalarAtom, SetMemberAtom
from repro.flogic.flatten import flatten_conjunction
from repro.lang.parser import parse_program, parse_query
from repro.oodb.database import Database
from repro.oodb.oid import NamedOid
from repro.query import Query


def n(value):
    return NamedOid(value)


@pytest.fixture
def db():
    """Five automobiles with skewed attribute selectivities."""
    db = Database()
    db.subclass("automobile", "vehicle")
    colors = ["red", "blue", "blue", "blue", "blue"]
    cylinders = [4, 4, 4, 4, 6]
    for i in range(5):
        db.add_object(f"car{i}", classes=["automobile"],
                      scalars={"color": colors[i],
                               "cylinders": cylinders[i]})
    db.add_object("p1", classes=["employee"],
                  sets={"vehicles": ["car0", "car1"]})
    db.add_object("p2", classes=["employee"],
                  sets={"vehicles": ["car2"]})
    return db


def atoms_for(text):
    return flatten_conjunction(parse_query(text))


class TestEstimates:
    def test_exact_bucket_beats_average(self, db):
        red = ScalarAtom(Name("color"), Var("Y"), (), Name("red"))
        blue = ScalarAtom(Name("color"), Var("Y"), (), Name("blue"))
        catalog = db.catalog()
        est_red = estimate_atom(db, catalog, red, frozenset())
        est_blue = estimate_atom(db, catalog, blue, frozenset())
        assert est_red.rows == 1.0   # one red car: real bucket size
        assert est_blue.rows == 4.0
        assert est_red.cost < est_blue.cost
        assert est_red.access == "method+result index"

    def test_bound_subject_uses_lookup(self, db):
        atom = ScalarAtom(Name("color"), Var("Y"), (), Var("C"))
        catalog = db.catalog()
        unbound = estimate_atom(db, catalog, atom, frozenset())
        bound = estimate_atom(db, catalog, atom, frozenset({Var("Y")}))
        assert bound.cost < unbound.cost
        assert bound.access == "primary lookup"

    def test_class_extent_is_exact(self, db):
        atom = IsaAtom(Var("X"), Name("employee"))
        est = estimate_atom(db, db.catalog(), atom, frozenset())
        assert est.rows == 2.0  # p1 and p2
        assert est.access == "class extent"

    def test_unindexed_store_estimates_scans(self):
        db = Database(indexed=False)
        db.add_object("car0", scalars={"color": "red"})
        atom = ScalarAtom(Name("color"), Var("Y"), (), Name("red"))
        est = estimate_atom(db, db.catalog(), atom, frozenset())
        assert est.access == "table scan"


class TestPlanOrder:
    def test_inverse_starts_with_most_selective_atom(self, db):
        # Written order puts the big bucket first; statistics flip it.
        atoms = atoms_for("Y[cylinders -> 4], Y[color -> red]")
        plan = build_plan(db, atoms)
        first = plan.steps[0].atom
        assert isinstance(first, ScalarAtom)
        assert first.method == Name("color")

    def test_bound_subject_navigates_from_subject(self, db):
        atoms = atoms_for("X[vehicles ->> {V}], V[color -> C]")
        free_plan = build_plan(db, atoms)
        bound_plan = build_plan(db, atoms, {Var("X")})
        assert isinstance(bound_plan.steps[0].atom, SetMemberAtom)
        assert bound_plan.steps[0].access == "primary lookup"
        assert bound_plan.order() != free_plan.order() or (
            free_plan.steps[0].access != "primary lookup"
        )

    def test_comparison_scheduled_once_ready(self, db):
        atoms = atoms_for("X : employee, X[vehicles ->> {V}], "
                          "V[cylinders -> K], K >= 6")
        plan = build_plan(db, atoms)
        order = plan.order()
        cylinders_at = next(
            i for i, a in enumerate(order)
            if isinstance(a, ScalarAtom) and a.method == Name("cylinders")
        )
        comparison_at = next(
            i for i, a in enumerate(order) if str(a) == "K >= 6"
        )
        assert comparison_at == cylinders_at + 1

    def test_superset_cost_never_reaches_sentinels(self, db):
        # Many free source variables once made the power-law superset
        # cost exceed UNREADY/MUST_WAIT, producing a bogus "unsafe
        # negation" error; the cost is capped below both sentinels.
        from repro.engine.planner import MUST_WAIT, UNREADY
        from repro.engine.solve import exists, solve

        for extra in range(800):
            db.add_object(f"pad{extra}")
        atoms = atoms_for("X[friends ->> {A.f, B.g, C.h, D.i}]")
        plan = build_plan(db, atoms)  # must not raise
        assert all(s.cost < UNREADY < MUST_WAIT for s in plan.steps)
        # Full enumeration is |U|^4; parity on the first solution only.
        assert exists(db, atoms)
        assert next(solve(db, atoms, use_planner=False), None) is not None

    def test_unsafe_negation_raises_at_plan_time(self, db):
        atoms = atoms_for("not X[color -> red], not X[color -> blue]")
        with pytest.raises(EvaluationError, match="unsafe negation"):
            build_plan(db, atoms)

    def test_static_safety_is_data_independent(self, db):
        # Deliberate divergence from the legacy dynamic order: a
        # structurally unsafe conjunction is rejected at plan time even
        # though its positive part matches nothing (the legacy order
        # stopped at the empty data atom and returned no answers).
        from repro.engine.solve import solve

        atoms = atoms_for("Y[nosuchmethod -> z], "
                          "not X[color -> red], not X[color -> blue]")
        assert list(solve(db, atoms, use_planner=False)) == []
        with pytest.raises(EvaluationError, match="unsafe negation"):
            build_plan(db, atoms)

    def test_relevant_bound_drops_foreign_variables(self, db):
        atoms = atoms_for("X : employee")
        bound = relevant_bound(atoms, {Var("X"), Var("Z")})
        assert bound == frozenset({Var("X")})


class TestPlanCache:
    def test_hit_returns_same_plan(self, db):
        cache = PlanCache()
        atoms = tuple(atoms_for("X : employee"))
        first = cache.get(db, atoms, frozenset())
        second = cache.get(db, atoms, frozenset())
        assert first is second
        assert cache.hits == 1 and cache.misses == 1

    def test_keyed_on_bound_variables(self, db):
        cache = PlanCache()
        atoms = tuple(atoms_for("X[vehicles ->> {V}], V[color -> C]"))
        free = cache.get(db, atoms, frozenset())
        bound = cache.get(db, atoms, frozenset({Var("X")}))
        assert free is not bound
        assert cache.misses == 2

    def test_invalidated_when_facts_are_added(self, db):
        cache = PlanCache()
        atoms = tuple(atoms_for("X : employee"))
        first = cache.get(db, atoms, frozenset())
        db.add_object("p3", classes=["employee"])
        again = cache.get(db, atoms, frozenset())
        assert again is not first
        assert cache.invalidations == 1

    def test_untracked_cache_survives_mutation(self, db):
        cache = PlanCache(track_version=False)
        atoms = tuple(atoms_for("X : employee"))
        first = cache.get(db, atoms, frozenset())
        db.add_object("p3", classes=["employee"])
        assert cache.get(db, atoms, frozenset()) is first


class TestStructuralPlanReuse:
    def test_alpha_renamed_conjunctions_share_a_plan(self, db):
        cache = PlanCache()
        first = tuple(atoms_for("X[vehicles ->> {V}], V[color -> C]"))
        renamed = tuple(atoms_for("A[vehicles ->> {B}], B[color -> D]"))
        plan = cache.get(db, first, frozenset())
        replayed = cache.get(db, renamed, frozenset())
        assert cache.misses == 1
        assert cache.structural_hits == 1
        # The replayed plan schedules the *renamed* atoms in the stored
        # order, with the stored estimates.
        assert [str(a) for a in replayed.order()] == [
            str(a).translate(str.maketrans("XVC", "ABD"))
            for a in plan.order()
        ]
        assert [s.access for s in replayed.steps] == \
            [s.access for s in plan.steps]

    def test_bound_positions_are_part_of_the_structure(self, db):
        cache = PlanCache()
        atoms = tuple(atoms_for("X[vehicles ->> {V}], V[color -> C]"))
        renamed = tuple(atoms_for("A[vehicles ->> {B}], B[color -> D]"))
        cache.get(db, atoms, frozenset({Var("X")}))
        cache.get(db, renamed, frozenset({Var("B")}))  # different position
        assert cache.structural_hits == 0
        cache.get(db, renamed, frozenset({Var("A")}))  # same position
        assert cache.structural_hits == 1

    def test_magic_adornment_variants_share_a_plan(self, db):
        # Rule-body variants guarded for different adornments of one
        # demand predicate differ only in the magic method's adornment
        # suffix (and variable naming); the structural key abstracts
        # both, so the greedy search runs once (ROADMAP:
        # adornment-aware plan reuse).
        cache = PlanCache()
        anchor = Name("__demand__")
        bf = (SetMemberAtom(Name("magic$set$desc$bf"), anchor, (),
                            Var("X")),
              SetMemberAtom(Name("vehicles"), Var("X"), (), Var("Y")))
        fb = (SetMemberAtom(Name("magic$set$desc$fb"), anchor, (),
                            Var("A")),
              SetMemberAtom(Name("vehicles"), Var("A"), (), Var("B")))
        cache.get(db, bf, frozenset())
        cache.get(db, fb, frozenset())
        assert cache.misses == 1
        assert cache.structural_hits == 1

    def test_different_magic_predicates_do_not_share(self, db):
        cache = PlanCache()
        anchor = Name("__demand__")
        one = (SetMemberAtom(Name("magic$set$desc$bf"), anchor, (),
                             Var("X")),)
        other = (SetMemberAtom(Name("magic$set$anc$bf"), anchor, (),
                               Var("X")),)
        cache.get(db, one, frozenset())
        cache.get(db, other, frozenset())
        assert cache.misses == 2 and cache.structural_hits == 0

    def test_different_constants_do_not_share(self, db):
        # Estimates probe exact index buckets for constants; a renamed
        # variable may share, a different constant never.
        cache = PlanCache()
        cache.get(db, tuple(atoms_for("Y[color -> red]")), frozenset())
        cache.get(db, tuple(atoms_for("Y[color -> blue]")), frozenset())
        assert cache.misses == 2 and cache.structural_hits == 0

    def test_replayed_plans_execute_correctly(self, db):
        from repro.engine.solve import solve

        cache = PlanCache()
        first = tuple(atoms_for("X[vehicles ->> {V}], V[color -> red]"))
        renamed = tuple(atoms_for("A[vehicles ->> {B}], B[color -> red]"))
        got_first = {frozenset(b.items())
                     for b in solve(db, first, cache=cache)}
        got_renamed = {frozenset(b.items())
                       for b in solve(db, renamed, cache=cache)}
        assert cache.structural_hits == 1
        rename = {Var("X"): Var("A"), Var("V"): Var("B")}
        assert got_renamed == {
            frozenset((rename[v], o) for v, o in row) for row in got_first
        }

    def test_unsafe_structures_are_never_stored(self, db):
        cache = PlanCache()
        atoms = tuple(atoms_for("not X[color -> C], not X[age -> A]"))
        with pytest.raises(EvaluationError):
            cache.get(db, atoms, frozenset())
        renamed = tuple(atoms_for("not Y[color -> D], not Y[age -> B]"))
        with pytest.raises(EvaluationError):
            cache.get(db, renamed, frozenset())
        assert cache.structural_hits == 0

    def test_invalidation_drops_structural_orders(self, db):
        cache = PlanCache()
        atoms = tuple(atoms_for("X : employee"))
        cache.get(db, atoms, frozenset())
        db.add_object("p3", classes=["employee"])
        cache.get(db, tuple(atoms_for("Y : employee")), frozenset())
        # The stored order predates the data change; it must not be
        # replayed across the invalidation.
        assert cache.structural_hits == 0
        assert cache.misses == 2

    def test_query_reuses_plans_across_variable_renamings(self, db):
        query = Query(db)
        query.all("X : employee..vehicles[color -> red]")
        query.all("E : employee..vehicles[color -> red]")
        assert query.plan_cache.structural_hits >= 1


class TestQueryExplain:
    def test_analyzed_report_matches_answers(self, db):
        q = Query(db)
        text = "X : employee..vehicles[color -> red]"
        report = q.explain(text)
        assert report.analyzed
        assert report.bindings == len(q.all(text))
        assert all(step.actual_rows is not None for step in report.steps)
        assert any("index" in step.access for step in report.steps)

    def test_bindings_count_precedes_dedup(self, db):
        # Two red vehicles on one owner: 2 solver bindings, 1 answer
        # after projection.  The report deliberately counts bindings.
        db.add_object("car0b", classes=["automobile"],
                      scalars={"color": "red"})
        db.add_object("p1", sets={"vehicles": ["car0b"]})
        q = Query(db)
        text = "X : employee..vehicles[color -> red]"
        report = q.explain(text)
        assert report.bindings == 2
        assert len(q.all(text, variables=["X"])) == 1

    def test_plan_only_report(self, db):
        report = Query(db).explain("X : employee", analyze=False)
        assert not report.analyzed
        assert report.steps[0].actual_rows is None
        assert "est.rows" in report.render()
        assert "rows\n" not in report.render().split("est.rows")[1][:10]

    def test_query_replans_after_new_facts(self, db):
        q = Query(db)
        text = "Y[color -> red]"
        q.all(text)
        q.all(text)
        assert q.plan_cache.hits >= 1
        misses_before = q.plan_cache.misses
        db.add_object("car9", scalars={"color": "red"})
        q.all(text)
        assert q.plan_cache.misses > misses_before
        assert q.plan_cache.invalidations >= 1

    def test_explain_conjunction_without_cache(self, db):
        report = explain_conjunction(db, atoms_for("X : employee"),
                                     title="adhoc")
        assert report.title == "adhoc"
        assert report.bindings == 2


class TestEnginePlanCapture:
    def test_rule_plans_are_captured(self, db):
        program = parse_program("""
            X[flagged -> yes] <- X : employee..vehicles[color -> red].
        """)
        engine = Engine(db, program)
        engine.run()
        reports = engine.plan_reports()
        assert len(reports) == 1
        report = reports[0]
        assert "flagged" in report.title
        assert report.bindings >= 1
        assert all(step.actual_rows is not None for step in report.steps)
        assert "plan:" in engine.explain()

    def test_plan_cache_hits_across_iterations(self):
        db = Database()
        for i in range(6):
            db.add_object(f"n{i}", scalars={"next": f"n{i + 1}"})
        program = parse_program("""
            X[reach ->> {Y}] <- X[next -> Y].
            X[reach ->> {Z}] <- X[reach ->> {Y}], Y[next -> Z].
        """)
        engine = Engine(db, program)
        engine.run()
        assert engine.stats.plans_built > 0
        assert engine.stats.plan_cache_hits > 0
