"""OID tests: display, nesting depth, deterministic ordering."""

import pytest

from repro.oodb.oid import NamedOid, VirtualOid, oid_sort_key


class TestNamedOid:
    def test_display_bare_and_quoted(self):
        assert NamedOid("mary").display() == "mary"
        assert NamedOid("New York").display() == '"New York"'
        assert NamedOid(30).display() == "30"

    def test_structural_equality(self):
        assert NamedOid("a") == NamedOid("a")
        assert NamedOid("a") != NamedOid("b")
        assert NamedOid(4) != NamedOid("4")


class TestVirtualOid:
    def test_display_is_the_creating_path(self):
        boss = VirtualOid(NamedOid("boss"), NamedOid("p1"))
        assert boss.display() == "p1.boss"

    def test_display_with_args(self):
        v = VirtualOid(NamedOid("salary"), NamedOid("john"), (NamedOid(1994),))
        assert v.display() == "john.salary@(1994)"

    def test_nested_display(self):
        boss = VirtualOid(NamedOid("boss"), NamedOid("p1"))
        boss2 = VirtualOid(NamedOid("boss"), boss)
        assert boss2.display() == "p1.boss.boss"

    def test_depth(self):
        boss = VirtualOid(NamedOid("boss"), NamedOid("p1"))
        assert boss.depth() == 1
        assert VirtualOid(NamedOid("boss"), boss).depth() == 2
        # Depth follows the deepest component, including the method.
        tc_kids = VirtualOid(NamedOid("tc"), NamedOid("kids"))
        deep = VirtualOid(tc_kids, NamedOid("x"))
        assert deep.depth() == 2

    def test_hash_consing_by_structure(self):
        a = VirtualOid(NamedOid("m"), NamedOid("s"), (NamedOid(1),))
        b = VirtualOid(NamedOid("m"), NamedOid("s"), (NamedOid(1),))
        assert a == b
        assert hash(a) == hash(b)


class TestSortKey:
    def test_named_before_virtual(self):
        named = NamedOid("z")
        virtual = VirtualOid(NamedOid("a"), NamedOid("a"))
        assert oid_sort_key(named) < oid_sort_key(virtual)

    def test_total_order_over_mixed_values(self):
        oids = [NamedOid(5), NamedOid("a"), NamedOid("b"), NamedOid(10),
                VirtualOid(NamedOid("m"), NamedOid("s"))]
        ordered = sorted(oids, key=oid_sort_key)
        assert sorted(ordered, key=oid_sort_key) == ordered

    def test_rejects_non_oid(self):
        with pytest.raises(TypeError):
            oid_sort_key("oops")  # type: ignore[arg-type]
