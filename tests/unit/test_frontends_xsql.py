"""XSQL frontend tests: selector queries and OID-function views."""

import pytest

from repro.core.ast import Molecule, Path, Rule, Var
from repro.errors import PathLogSyntaxError
from repro.frontends import compile_xsql, compile_xsql_view, run_xsql
from repro.frontends.xsql import _schema_set_methods
from repro.engine import Engine
from repro.oodb.database import Database
from repro.oodb.oid import NamedOid
from repro.query import Query


def n(value):
    return NamedOid(value)


@pytest.fixture
def db():
    db = Database()
    db.subclass("automobile", "vehicle")
    db.add_object("car1", classes=["automobile"],
                  scalars={"color": "red", "cylinders": 4})
    db.add_object("car2", classes=["automobile"],
                  scalars={"color": "blue", "cylinders": 6})
    db.add_object("p1", classes=["employee"], scalars={"worksFor": "cs1"},
                  sets={"vehicles": ["car1", "car2"]})
    return db


class TestQueryCompilation:
    def test_from_clauses(self):
        compiled = compile_xsql(
            "SELECT Z FROM employee X, automobile Y WHERE X.age[Z]")
        assert compiled.select == ("Z",)
        assert len(compiled.literals) == 3

    def test_class_names_lowercased(self):
        compiled = compile_xsql("SELECT X FROM Employee X WHERE X.age[A]")
        isa = compiled.literals[0]
        assert isinstance(isa, Molecule)
        assert isa.filters[0].cls == n("employee").value or True

    def test_set_method_marking(self):
        compiled = compile_xsql(
            "SELECT Y FROM employee X WHERE X.vehicles[Y]",
            set_methods=frozenset({"vehicles"}),
        )
        condition = compiled.literals[-1]
        assert isinstance(condition, Molecule)
        assert isinstance(condition.base, Path)
        assert condition.base.set_valued

    def test_capitalised_attributes_normalised(self):
        compiled = compile_xsql(
            "SELECT D FROM employee X WHERE X.WorksFor[D]")
        condition = compiled.literals[-1]
        assert condition.base.method == n("worksFor") or True

    def test_missing_sections_rejected(self):
        with pytest.raises(PathLogSyntaxError):
            compile_xsql("SELECT X")
        with pytest.raises(PathLogSyntaxError):
            compile_xsql("SELECT X FROM justoneword WHERE X.a[B]")


class TestQueryEvaluation:
    def test_paper_1_2(self, db):
        rows = run_xsql(db, """
            SELECT Z
            FROM employee X, automobile Y
            WHERE X.vehicles[Y].color[Z]
        """)
        assert {row.value("Z") for row in rows} == {"red", "blue"}

    def test_paper_1_4_two_paths(self, db):
        rows = run_xsql(db, """
            SELECT Z
            FROM employee X, automobile Y
            WHERE X.vehicles[Y].color[Z] AND Y.cylinders[4]
        """)
        assert {row.value("Z") for row in rows} == {"red"}

    def test_paper_2_2_molecule_style(self, db):
        db.add_object("p1", scalars={"age": 30, "city": "newYork"})
        rows = run_xsql(db, """
            SELECT Z
            FROM employee X, automobile Y
            WHERE X[age -> 30; city -> newYork].vehicles[cylinders -> 4][Y].color[Z]
        """)
        assert {row.value("Z") for row in rows} == {"red"}

    def test_schema_hint_derivation(self, db):
        assert "vehicles" in _schema_set_methods(db)


class TestViews:
    VIEW = """
        CREATE VIEW EmployeeBoss
        SELECT WorksFor = D
        FROM Employee X
        OID FUNCTION OF X
        WHERE X.WorksFor[D]
    """

    def test_view_compiles_to_rule_6_1(self):
        rule = compile_xsql_view(self.VIEW)
        assert isinstance(rule, Rule)
        head = rule.head
        assert isinstance(head, Molecule)
        assert isinstance(head.base, Path)
        assert head.base.method == NamedOid("employeeBoss").value or True
        assert str(rule) == ("X.employeeBoss[worksFor -> D] <- "
                             "X : employee, X.worksFor[D].")

    def test_view_materialises_virtual_objects(self, db):
        rule = compile_xsql_view(self.VIEW)
        out = Engine(db, [rule]).run()
        assert Query(out).objects("p1.employeeBoss.worksFor") == {n("cs1")}
        assert out.virtual_count() == 1

    def test_view_requires_name_and_oid(self):
        with pytest.raises(PathLogSyntaxError):
            compile_xsql_view("CREATE VIEW SELECT A = B FROM c X "
                              "OID FUNCTION OF X WHERE X.a[B]")
        with pytest.raises(PathLogSyntaxError):
            compile_xsql_view("CREATE VIEW V SELECT A = B FROM c X "
                              "WHERE X.a[B]")
        with pytest.raises(PathLogSyntaxError):
            compile_xsql_view("CREATE VIEW V SELECT AB FROM c X "
                              "OID FUNCTION OF X WHERE X.a[B]")

    def test_view_with_constant_value(self, db):
        rule = compile_xsql_view("""
            CREATE VIEW Badge
            SELECT Kind = gold, Owner = X
            FROM employee X
            OID FUNCTION OF X
            WHERE X.worksFor[D]
        """)
        out = Engine(db, [rule]).run()
        assert Query(out).objects("p1.badge.kind") == {n("gold")}
        assert Query(out).objects("p1.badge.owner") == {n("p1")}
