"""Dense OID surrogates: the interner and its database integration.

The columnar executor trusts three invariants absolutely: surrogates
are a bijection over live objects (two live OIDs never share an int),
they are *dense* (drawn from ``0..capacity-1`` so a plain list serves
as the resolver), and they are *stable across clones* (the engine
evaluates on a clone, so plans compiled against the original must agree
with the copy).  These tests pin each invariant directly, plus the
lifecycle edges: retire/free-list reuse, retraction followed by
re-assertion, and change-log trimming while mirrors are live.
"""

from repro.oodb.database import Database
from repro.oodb.oid import NamedOid, OidInterner, VirtualOid


def n(value):
    return NamedOid(value)


class TestInterner:
    def test_intern_resolve_bijection(self):
        interner = OidInterner()
        oids = [n("a"), n("b"), n(30), n("x y"),
                VirtualOid(n("boss"), n("a"))]
        surrogates = [interner.intern(oid) for oid in oids]
        assert len(set(surrogates)) == len(oids)
        for oid, surrogate in zip(oids, surrogates):
            assert interner.resolve(surrogate) == oid
            assert interner.surrogate(oid) == surrogate
            assert interner.intern(oid) == surrogate  # idempotent

    def test_surrogates_are_dense(self):
        interner = OidInterner()
        for index, name in enumerate("abcdef"):
            assert interner.intern(n(name)) == index
        assert interner.capacity == 6
        assert len(interner) == 6

    def test_unknown_oid_has_no_surrogate(self):
        interner = OidInterner()
        assert interner.surrogate(n("ghost")) is None

    def test_retire_tombstones_and_reuses(self):
        interner = OidInterner()
        a, b = interner.intern(n("a")), interner.intern(n("b"))
        assert interner.retire(n("a"))
        assert not interner.retire(n("a"))  # already gone
        assert interner.resolve(a) is None  # tombstoned, not shifted
        assert interner.surrogate(n("a")) is None
        assert interner.resolve(b) == n("b")
        # The freed slot is recycled for the *next* new object ...
        c = interner.intern(n("c"))
        assert c == a
        assert interner.capacity == 2  # no growth

    def test_free_list_reuse_never_aliases_two_live_objects(self):
        interner = OidInterner()
        pool = [n(f"o{i}") for i in range(8)]
        for oid in pool:
            interner.intern(oid)
        for oid in pool[::2]:
            interner.retire(oid)
        fresh = [n(f"fresh{i}") for i in range(6)]
        for oid in fresh:
            interner.intern(oid)
        live = pool[1::2] + fresh
        surrogates = {oid: interner.surrogate(oid) for oid in live}
        assert len(set(surrogates.values())) == len(live)
        for oid, surrogate in surrogates.items():
            assert interner.resolve(surrogate) == oid

    def test_reinterning_retired_oid_gets_a_fresh_slot(self):
        interner = OidInterner()
        old = interner.intern(n("a"))
        interner.retire(n("a"))
        interner.intern(n("blocker"))  # consumes the freed slot
        again = interner.intern(n("a"))
        assert again != old
        assert interner.resolve(again) == n("a")

    def test_resolver_list_is_live(self):
        interner = OidInterner()
        resolver = interner.resolver()
        surrogate = interner.intern(n("late"))
        assert resolver[surrogate] == n("late")

    def test_clone_is_independent_but_identical(self):
        interner = OidInterner()
        a = interner.intern(n("a"))
        interner.intern(n("doomed"))
        interner.retire(n("doomed"))
        copy = interner.clone()
        assert copy.surrogate(n("a")) == a
        # Divergence after the clone stays local to each side.
        left = interner.intern(n("left"))
        right = copy.intern(n("right"))
        assert left == right  # both reuse the same freed slot ...
        assert interner.resolve(left) == n("left")
        assert copy.resolve(right) == n("right")  # ... independently
        assert copy.surrogate(n("left")) is None


class TestDatabaseSurrogates:
    def test_database_intern_resolve_roundtrip(self):
        db = Database()
        mary = db.obj("mary")
        surrogate = db.intern(mary)
        assert db.resolve(surrogate) == mary
        assert db.intern(mary) == surrogate

    def test_surrogates_stable_across_clone(self):
        db = Database()
        db.add_object("p1", scalars={"age": 30}, sets={"kids": ["p2"]})
        surrogates = {name: db.intern(db.obj(name))
                      for name in ("p1", "p2", "age", "kids", 30)}
        copy = db.clone()
        for name, surrogate in surrogates.items():
            assert copy.intern(copy.obj(name)) == surrogate
        # New interning after the clone diverges independently.
        assert db.intern(db.obj("onlyLeft")) == copy.intern(
            copy.obj("onlyRight"))

    def test_retraction_and_reassert_keeps_surrogate(self):
        db = Database()
        db.add_object("p1", scalars={"boss": "p2"})
        before = db.intern(db.obj("p2"))
        db.retract_scalar(db.obj("boss"), db.obj("p1"))
        # Retraction removes the fact, not the object: its surrogate
        # survives, so mirrors and plans need no invalidation.
        db.add_object("p1", scalars={"boss": "p2"})
        assert db.intern(db.obj("p2")) == before
        assert db.scalars.get(db.obj("boss"), db.obj("p1"), ()) == n("p2")

    def test_mirror_consistent_after_retract_and_reassert(self):
        db = Database()
        db.add_object("p1", scalars={"boss": "p2"})
        view = db.scalars.surrogate_view(db.interner)
        m = db.intern(db.obj("boss"))
        s, r = db.intern(db.obj("p1")), db.intern(db.obj("p2"))
        assert view.apps[m][s] == r
        db.retract_scalar(db.obj("boss"), db.obj("p1"))
        assert s not in db.scalars.surrogate_view(db.interner).apps.get(m, {})
        db.add_object("p1", scalars={"boss": "p3"})
        assert db.scalars.surrogate_view(db.interner).apps[m][s] == \
            db.intern(db.obj("p3"))

    def test_change_log_trimming_with_live_mirrors(self):
        db = Database()
        db.add_object("p1", scalars={"boss": "p2"})
        db.scalars.surrogate_view(db.interner)
        log = db.begin_changes()
        db.retract_scalar(db.obj("boss"), db.obj("p1"))
        db.assert_scalar(db.obj("boss"), db.obj("p1"), (), db.obj("p3"))
        holder = type("Holder", (), {})()  # weak-referenceable anchor
        db.hold_changes(holder, log.cursor())
        db.assert_scalar(db.obj("age"), db.obj("p1"), (), db.obj(30))
        assert db.trim_changes() == 2  # everything below the held cursor
        assert len(log.since(log.cursor() - 1)) == 1
        # Trimming touches only the log: surrogates and the mirror
        # still agree with the boxed table.
        m = db.intern(db.obj("boss"))
        s = db.intern(db.obj("p1"))
        view = db.scalars.surrogate_view(db.interner)
        assert view.apps[m][s] == db.intern(db.obj("p3"))
        db.release_changes(holder)
