"""Query budget tests: deadlines, caps, cancellation, threading.

The clock is injectable, so every timeout here is deterministic: a
stepping fake clock advances a fixed amount per call and the budget
notices exactly at the checkpoint the test predicts.
"""

import itertools

import pytest

from repro.engine import Engine, QueryBudget
from repro.engine.budget import QueryBudget as DirectQueryBudget
from repro.errors import (
    BudgetExceededError,
    EvaluationCancelled,
    EvaluationError,
    EvaluationTimeout,
    PathLogError,
)
from repro.lang.parser import parse_program
from repro.oodb.database import Database
from repro.query.query import Query

EXECUTORS = ["columnar", "batch", "compiled", "interpreted"]

DESC = """
    peter[kids ->> {tim, mary}].
    tim[kids ->> {sally}].
    mary[kids ->> {tom, paul}].
    X[desc ->> {Y}] <- X[kids ->> {Y}].
    X[desc ->> {Y}] <- X..desc[kids ->> {Y}].
"""


def stepping_clock(step=1.0, start=0.0):
    """A fake clock advancing ``step`` seconds per call."""
    counter = itertools.count()
    return lambda: start + next(counter) * step


class ManualClock:
    """A fake clock that only moves when the test says so."""

    def __init__(self) -> None:
        self.now = 0.0

    def __call__(self) -> float:
        return self.now


class TestQueryBudget:
    def test_exported_from_engine_package(self):
        assert QueryBudget is DirectQueryBudget

    def test_no_limits_never_raises(self):
        budget = QueryBudget()
        for _ in range(100):
            budget.check("anywhere")
        budget.charge(10_000, "anywhere")
        assert budget.checks == 100

    def test_deadline_anchors_once(self):
        clock = stepping_clock(step=0.0, start=5.0)
        budget = QueryBudget(timeout_ms=100, clock=clock)
        budget.start()
        first = budget.deadline
        budget.start()
        assert budget.deadline == first == pytest.approx(5.1)

    def test_timeout_raises_typed_error_with_site(self):
        budget = QueryBudget(timeout_ms=500, clock=stepping_clock(step=1.0))
        budget.start()  # anchors at t=0, deadline t=0.5
        with pytest.raises(EvaluationTimeout) as info:
            budget.check("engine.iteration", stratum=2, iteration=7)
        assert "500ms" in str(info.value)
        assert info.value.site == "engine.iteration"
        assert info.value.stratum == 2
        assert info.value.iteration == 7
        assert "stratum 2" in info.value.where
        assert "iteration 7" in info.value.where

    def test_check_self_anchors_without_start(self):
        budget = QueryBudget(timeout_ms=500, clock=stepping_clock(step=0.3))
        budget.check("first")  # anchors at t=0 (deadline 0.5), reads t=0.3
        with pytest.raises(EvaluationTimeout):
            budget.check("second")  # reads t=0.6

    def test_cancel_raises_at_next_checkpoint(self):
        budget = QueryBudget()
        budget.check("before")
        budget.cancel()
        assert budget.cancelled
        with pytest.raises(EvaluationCancelled):
            budget.check("after")

    def test_max_derived_cap(self):
        budget = QueryBudget(max_derived=10)
        budget.charge(6, "engine.iteration")
        with pytest.raises(BudgetExceededError) as info:
            budget.charge(5, "engine.iteration", stratum=0, iteration=2)
        assert "max_derived" in str(info.value)
        assert "11" in str(info.value)

    def test_begin_run_resets_derived_counter(self):
        budget = QueryBudget(max_derived=10)
        budget.charge(9, "a")
        budget.begin_run()
        budget.charge(9, "a")  # fresh run: no raise

    def test_remaining_ms(self):
        budget = QueryBudget(timeout_ms=1000,
                             clock=stepping_clock(step=0.25))
        budget.start()  # t=0, deadline 1.0
        assert budget.remaining_ms() == pytest.approx(750.0)
        assert QueryBudget().remaining_ms() is None

    def test_errors_are_catchable_as_library_errors(self):
        assert issubclass(EvaluationTimeout, BudgetExceededError)
        assert issubclass(EvaluationCancelled, BudgetExceededError)
        assert issubclass(BudgetExceededError, EvaluationError)
        assert issubclass(BudgetExceededError, PathLogError)


class TestEngineBudget:
    @pytest.mark.parametrize("executor", EXECUTORS)
    def test_max_derived_stops_fixpoint(self, executor):
        db = Database()
        before = db.data_version()
        budget = QueryBudget(max_derived=2)
        engine = Engine(db, parse_program(DESC), executor=executor,
                        budget=budget)
        with pytest.raises(BudgetExceededError) as info:
            engine.run()
        assert "max_derived" in str(info.value)
        assert info.value.stratum is not None
        assert info.value.iteration is not None
        # Where evaluation stopped is surfaced through the stats too.
        assert engine.stats.stopped_at == info.value.where
        assert engine.stats.budget_checks > 0
        # The input database is a pre-clone snapshot: untouched.
        assert len(db) == 0
        assert db.data_version() == before

    @pytest.mark.parametrize("executor", EXECUTORS)
    def test_timeout_stops_fixpoint(self, executor):
        budget = QueryBudget(timeout_ms=500,
                             clock=stepping_clock(step=1.0))
        engine = Engine(Database(), parse_program(DESC),
                        executor=executor, budget=budget)
        with pytest.raises(EvaluationTimeout):
            engine.run()

    def test_cancel_stops_fixpoint(self):
        budget = QueryBudget()
        budget.cancel()
        engine = Engine(Database(), parse_program(DESC), budget=budget)
        with pytest.raises(EvaluationCancelled):
            engine.run()

    def test_unbudgeted_run_reports_no_checks(self):
        engine = Engine(Database(), parse_program(DESC))
        engine.run()
        assert engine.stats.budget_checks == 0
        assert engine.stats.stopped_at is None
        assert engine.stats.as_row()["stopped-at"] == "-"


class TestQueryBudgetThreading:
    @pytest.mark.parametrize("magic", [True, False])
    def test_program_query_honours_max_derived(self, magic):
        db = Database()
        budget = QueryBudget(max_derived=2)
        query = Query(db, program=parse_program(DESC), magic=magic,
                      budget=budget)
        with pytest.raises(BudgetExceededError):
            query.all("peter[desc ->> {X}]")

    def test_program_query_honours_timeout(self):
        budget = QueryBudget(timeout_ms=500,
                             clock=stepping_clock(step=1.0))
        query = Query(Database(), program=parse_program(DESC),
                      budget=budget)
        with pytest.raises(EvaluationTimeout):
            query.all("peter[desc ->> {X}]")

    def test_explain_propagates_budget_errors(self):
        # Query.explain renders planning rejections as a fallback but
        # must NOT swallow a budget expiry into that rendering.
        budget = QueryBudget(max_derived=1)
        query = Query(Database(), program=parse_program(DESC),
                      budget=budget)
        with pytest.raises(BudgetExceededError):
            query.explain("peter[desc ->> {X}]")

    def test_adhoc_query_unaffected_without_budget(self):
        db = Database()
        db.assert_isa(db.obj("p1"), db.obj("employee"))
        query = Query(db, budget=QueryBudget(timeout_ms=None))
        assert query.ask("p1 : employee")


class TestMaintainerBudget:
    def _memoised(self, budget=None):
        db = Database()
        db.begin_changes()
        db.assert_set_member(db.obj("kids"), db.obj("peter"), (),
                             db.obj("tim"))
        query = Query(db, program=parse_program("""
            X[desc ->> {Y}] <- X[kids ->> {Y}].
            X[desc ->> {Y}] <- X..desc[kids ->> {Y}].
        """), magic=False, budget=budget)
        query.all("peter[desc ->> {X}]")  # materialise + memoise
        return db, query

    def test_expired_budget_stops_maintenance(self):
        clock = ManualClock()
        budget = QueryBudget(timeout_ms=500, clock=clock)
        db, query = self._memoised(budget)  # builds at t=0, in budget
        db.assert_set_member(db.obj("kids"), db.obj("tim"), (),
                             db.obj("sally"))
        clock.now = 10.0  # deadline long gone
        with pytest.raises(EvaluationTimeout):
            query.all("peter[desc ->> {X}]")

    def test_expired_budget_leaves_result_unmaintained(self):
        # Direct maintainer path: the apply checkpoint notices before
        # the first write, so the result database stays bit-identical.
        clock = ManualClock()
        budget = QueryBudget(timeout_ms=500, clock=clock)
        db = Database()
        log = db.begin_changes()
        db.assert_set_member(db.obj("kids"), db.obj("peter"), (),
                             db.obj("tim"))
        engine = Engine(db, parse_program("""
            X[desc ->> {Y}] <- X[kids ->> {Y}].
            X[desc ->> {Y}] <- X..desc[kids ->> {Y}].
        """), record_support=True, budget=budget)
        result = engine.run()
        cursor = log.cursor()
        db.assert_set_member(db.obj("kids"), db.obj("tim"), (),
                             db.obj("sally"))
        maintainer = engine.maintainer(result, db)
        before = dict(result.sets.items())
        clock.now = 10.0
        with pytest.raises(EvaluationTimeout):
            maintainer.apply(log.since(cursor))
        assert dict(result.sets.items()) == before

    def test_maintenance_still_works_with_roomy_budget(self):
        budget = QueryBudget(timeout_ms=10_000_000)
        db, query = self._memoised(budget)
        db.assert_set_member(db.obj("kids"), db.obj("tim"), (),
                             db.obj("sally"))
        answers = {a.value("X") for a
                   in query.all("peter[desc ->> {X}]")}
        assert answers == {"tim", "sally"}
        assert query.last_maintenance is not None
        assert query.last_maintenance.applied


class TestRowwiseCheckpoints:
    """Row-at-a-time fallback steps (negation, superset, dynamic
    dispatch) consult the *activated* budget every
    ``ROWWISE_CHECK_INTERVAL`` rows, so an expiry or ``cancel()`` is
    noticed mid-batch instead of after the whole batch finished."""

    def _fallback_db(self, count=600):
        db = Database()
        for i in range(count):
            scalars = {"flag": "on"} if i % 2 else {}
            db.add_object(f"i{i}", classes=["item"], scalars=scalars)
        return db

    def _fallback_atoms(self):
        from repro.flogic.flatten import flatten_conjunction
        from repro.lang.parser import parse_query

        return flatten_conjunction(parse_query(
            "X : item, not X[flag -> on]"))

    def test_detection_latency_is_one_row_interval(self):
        # Drive the fallback step directly: the kernel's clock advances
        # one ms per row against a 300ms budget.  Expiry lands at row
        # 300; the checkpoint at row 512 -- the first interval boundary
        # past it -- raises, so detection lags the expiry by at most
        # ROWWISE_CHECK_INTERVAL rows, never a whole batch.
        from repro.engine.batch import _rowwise, activated
        from repro.engine.budget import ROWWISE_CHECK_INTERVAL

        clock = ManualClock()
        rows = []

        def kern(regs):
            clock.now += 0.001
            rows.append(regs[0])
            yield regs

        step = _rowwise(1, (0,), (), kern)((0,))
        budget = QueryBudget(timeout_ms=300, clock=clock).start()
        run = activated(lambda _: step([list(range(1000))], 1000), budget)
        with pytest.raises(EvaluationTimeout) as info:
            run()
        assert info.value.site == "batch.rowwise"
        assert len(rows) == 2 * ROWWISE_CHECK_INTERVAL  # 512 <= 300 + 256

    def test_without_budget_batch_runs_unchecked(self):
        from repro.engine.batch import _rowwise

        rows = []

        def kern(regs):
            rows.append(regs[0])
            yield regs

        step = _rowwise(1, (0,), (), kern)((0,))
        assert step([list(range(1000))], 1000) == 1000
        assert len(rows) == 1000

    @pytest.mark.parametrize("executor", ["batch", "columnar"])
    def test_negation_fallback_hits_rowwise_checkpoints(self, executor):
        from repro.engine.solve import solve

        recorded = []

        class Recording(QueryBudget):
            def check(self, site, **kw):
                recorded.append(site)
                super().check(site, **kw)

        db = self._fallback_db(600)
        answers = list(solve(db, self._fallback_atoms(),
                             executor=executor, budget=Recording()))
        assert len(answers) == 300
        assert recorded.count("batch.rowwise") >= 2  # rows 256 and 512

    @pytest.mark.parametrize("executor", ["batch", "columnar"])
    def test_cancel_noticed_mid_batch(self, executor):
        # cancel() only flips a flag; the raise happens at the next
        # checkpoint.  With 600 rows in the negation fallback that is
        # row 256 of the batch, not the end of it.
        from repro.engine.solve import solve

        class CancelAtRowwise(QueryBudget):
            def check(self, site, **kw):
                if site == "batch.rowwise":
                    self.cancel()
                super().check(site, **kw)

        db = self._fallback_db(600)
        with pytest.raises(EvaluationCancelled) as info:
            list(solve(db, self._fallback_atoms(),
                       executor=executor, budget=CancelAtRowwise()))
        assert info.value.site == "batch.rowwise"
