"""Definition 3: well-formedness of references."""

import pytest

from repro.core.ast import (
    IsaFilter,
    Molecule,
    Name,
    Paren,
    Path,
    ScalarFilter,
    SetEnumFilter,
    SetFilter,
    Var,
)
from repro.core.wellformed import check_well_formed, is_simple, is_well_formed
from repro.errors import WellFormednessError
from repro.lang.parser import parse_reference


def ref(text: str):
    return parse_reference(text, check=False)


class TestAccepted:
    @pytest.mark.parametrize("text", [
        "p1.age",
        "p1..assistants",
        "p1..assistants[salary -> 1000]",
        "p2[friends ->> {p3, p4}]",
        "p2[friends ->> p1..assistants]",
        "p1..assistants.salary",
        "p1..assistants..projects",
        # Paths may use set-valued references even as arguments:
        "p1.paidFor@(p1..vehicles)",
        "mary.spouse[boss -> mary[age -> 25]].age",
        "X : employee[age -> 30; city -> newYork]"
        "..vehicles : automobile[cylinders -> 4].color[Z]",
        "L : (integer.list)",
        "X[(M.tc) ->> {Y}]",
        "john.spouse[]",
    ])
    def test_paper_references_are_well_formed(self, text):
        check_well_formed(ref(text))

    def test_empty_enum_set(self):
        check_well_formed(ref("p2[friends ->> {}]"))


class TestRejected:
    def test_paper_4_5_set_valued_result_of_scalar_filter(self):
        # Paper (4.5): p2[boss -> p1..assistants] is "obviously incorrect".
        with pytest.raises(WellFormednessError, match="scalar"):
            check_well_formed(ref("p2[boss -> p1..assistants]"))

    def test_scalar_result_of_set_filter(self):
        # ->> needs a set-valued reference or an explicit set.
        with pytest.raises(WellFormednessError, match="set-valued"):
            check_well_formed(ref("p2[friends ->> p3]"))

    def test_set_valued_enum_element(self):
        bad = Molecule(Name("p2"), (
            SetEnumFilter(Name("friends"), (),
                          (Paren(ref("p1..assistants")),)),
        ))
        with pytest.raises(WellFormednessError, match="element"):
            check_well_formed(bad)

    def test_set_valued_class(self):
        bad = Molecule(Name("x"), (IsaFilter(Paren(ref("p1..assistants"))),))
        with pytest.raises(WellFormednessError, match="class"):
            check_well_formed(bad)

    def test_set_valued_method_in_filter(self):
        bad = Molecule(Name("x"), (
            ScalarFilter(Paren(ref("p1..assistants")), (), Name(1)),
        ))
        with pytest.raises(WellFormednessError, match="method"):
            check_well_formed(bad)

    def test_set_valued_filter_argument(self):
        bad = Molecule(Name("x"), (
            ScalarFilter(Name("m"), (Paren(ref("p1..assistants")),),
                         Name(1)),
        ))
        with pytest.raises(WellFormednessError, match="argument"):
            check_well_formed(bad)

    def test_non_simple_method_in_path(self):
        bad = Path(Name("a"), Path(Name("b"), Name("c"), ()), ())
        with pytest.raises(WellFormednessError, match="simple"):
            check_well_formed(bad)

    def test_non_simple_method_in_filter(self):
        bad = Molecule(Name("x"), (
            ScalarFilter(Path(Name("b"), Name("c"), ()), (), Name(1)),
        ))
        with pytest.raises(WellFormednessError, match="simple"):
            check_well_formed(bad)

    def test_nested_violation_is_found(self):
        bad = Path(ref("p2[boss -> p1..assistants]"), Name("m"), ())
        assert not is_well_formed(bad)


class TestIsSimple:
    def test_simple_forms(self):
        assert is_simple(Name("a"))
        assert is_simple(Var("X"))
        assert is_simple(Paren(ref("a.b.c")))
        assert not is_simple(ref("a.b"))
