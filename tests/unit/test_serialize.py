"""JSON serialisation tests: round-trips and malformed input."""

import pytest

from repro.oodb.database import Database
from repro.oodb.oid import NamedOid, VirtualOid
from repro.oodb.serialize import (
    SerializationError,
    decode_oid,
    dumps,
    encode_oid,
    loads,
)


def n(value):
    return NamedOid(value)


class TestOidCodec:
    def test_named_round_trip(self):
        for value in ("mary", 30, "New York"):
            assert decode_oid(encode_oid(n(value))) == n(value)

    def test_virtual_round_trip(self):
        nested = VirtualOid(VirtualOid(n("tc"), n("kids")), n("peter"),
                            (n(1994),))
        assert decode_oid(encode_oid(nested)) == nested

    @pytest.mark.parametrize("bad", [
        42, "x", {"z": 1}, {"v": []}, {"v": [1]}, {"n": True}, {"n": [1]},
    ])
    def test_malformed_oids_rejected(self, bad):
        with pytest.raises(SerializationError):
            decode_oid(bad)


class TestDatabaseRoundTrip:
    def build(self) -> Database:
        db = Database()
        db.subclass("automobile", "vehicle")
        db.add_object("car1", classes=["automobile"],
                      scalars={"color": "red", "cylinders": 4})
        db.add_object("p1", classes=["employee"],
                      sets={"vehicles": ["car1"]})
        db.alias("auto1", "car1")
        subject = db.lookup_name("john")
        db.assert_scalar(n("salary"), subject, (n(1994),), n(1000))
        boss = VirtualOid(n("boss"), n("p1"))
        db.assert_scalar(n("boss"), n("p1"), (), boss)
        return db

    def test_round_trip_preserves_everything(self):
        db = self.build()
        restored = loads(dumps(db))
        assert restored.universe() == db.universe()
        assert set(restored.hierarchy.declared_edges()) == \
            set(db.hierarchy.declared_edges())
        assert dict(restored.scalars.items()) == dict(db.scalars.items())
        assert dict(restored.sets.items()) == dict(db.sets.items())
        assert restored.lookup_name("auto1") == n("car1")

    def test_round_trip_is_stable(self):
        db = self.build()
        once = dumps(db)
        assert dumps(loads(once)) == once

    def test_reflexive_flag_preserved(self):
        db = Database(reflexive_isa=True)
        db.subclass("a", "b")
        assert loads(dumps(db)).hierarchy.reflexive

    def test_invalid_json(self):
        with pytest.raises(SerializationError, match="invalid JSON"):
            loads("{nope")

    def test_wrong_version(self):
        with pytest.raises(SerializationError, match="version"):
            loads('{"format": 99}')


class TestFactCodec:
    """encode_fact/decode_fact carry the WAL's change-entry payloads."""

    def test_isa_round_trip(self):
        from repro.oodb.serialize import decode_fact, encode_fact
        fact = ("isa", n("tom"), n("cat"))
        assert decode_fact(encode_fact(fact)) == fact

    def test_scalar_and_set_round_trip(self):
        from repro.oodb.serialize import decode_fact, encode_fact
        for kind in ("scalar", "set"):
            fact = (kind, n("salary"), n("p1"), (n(1994),), n(1000))
            assert decode_fact(encode_fact(fact)) == fact

    def test_virtual_oids_survive(self):
        from repro.oodb.serialize import decode_fact, encode_fact
        boss = VirtualOid(n("boss"), n("p1"))
        fact = ("scalar", n("boss"), n("p1"), (), boss)
        assert decode_fact(encode_fact(fact)) == fact

    def test_unknown_kind_rejected_on_encode(self):
        from repro.oodb.serialize import encode_fact
        with pytest.raises(TypeError):
            encode_fact(("alias", "t", n("tom")))

    @pytest.mark.parametrize("bad", [
        42, [], ["isa"], ["isa", {"n": "a"}],
        ["scalar", {"n": "m"}, {"n": "s"}],
        ["scalar", {"n": "m"}, {"n": "s"}, "args", {"n": "r"}],
        ["nope", {"n": "a"}, {"n": "b"}],
    ])
    def test_malformed_facts_rejected_on_decode(self, bad):
        from repro.oodb.serialize import decode_fact
        with pytest.raises(SerializationError):
            decode_fact(bad)


class TestByteStability:
    """Snapshot checksums need ``to_dict`` to be byte-stable: two
    databases holding the same facts must encode identically however
    the facts were inserted."""

    def test_insertion_order_does_not_change_bytes(self):
        from repro.oodb.serialize import to_dict
        import json

        def forward():
            db = Database()
            db.assert_isa(n("a"), n("c1"))
            db.assert_isa(n("b"), n("c2"))
            db.assert_scalar(n("m"), n("a"), (), n(1))
            db.assert_scalar(n("m"), n("b"), (), n(2))
            db.assert_set_member(n("s"), n("a"), (), n("x"))
            db.assert_set_member(n("s"), n("a"), (), n("y"))
            db.alias("one", n("a"))
            db.alias("two", n("b"))
            return db

        def backward():
            db = Database()
            db.alias("two", n("b"))
            db.alias("one", n("a"))
            db.assert_set_member(n("s"), n("a"), (), n("y"))
            db.assert_set_member(n("s"), n("a"), (), n("x"))
            db.assert_scalar(n("m"), n("b"), (), n(2))
            db.assert_scalar(n("m"), n("a"), (), n(1))
            db.assert_isa(n("b"), n("c2"))
            db.assert_isa(n("a"), n("c1"))
            return db

        canonical = lambda db: json.dumps(to_dict(db), sort_keys=True,
                                          separators=(",", ":"))
        assert canonical(forward()) == canonical(backward())

    def test_pinned_encoding_bytes(self):
        """The exact bytes are pinned: changing them breaks every
        existing snapshot's checksum, so it must bump FORMAT_VERSION."""
        from repro.oodb.serialize import to_dict
        import json
        db = Database()
        db.assert_isa(n("tom"), n("cat"))
        db.assert_scalar(n("age"), n("tom"), (), n(3))
        encoded = json.dumps(to_dict(db), sort_keys=True,
                             separators=(",", ":"))
        assert encoded == (
            '{"aliases":[],"format":1,'
            '"isa":[[{"n":"tom"},{"n":"cat"}]],'
            '"reflexive_isa":false,'
            '"scalars":[[{"n":"age"},{"n":"tom"},[],{"n":3}]],'
            '"sets":[],'
            '"universe":[{"n":3},{"n":"age"},{"n":"cat"},{"n":"tom"}]}'
        )
