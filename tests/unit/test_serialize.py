"""JSON serialisation tests: round-trips and malformed input."""

import pytest

from repro.oodb.database import Database
from repro.oodb.oid import NamedOid, VirtualOid
from repro.oodb.serialize import (
    SerializationError,
    decode_oid,
    dumps,
    encode_oid,
    loads,
)


def n(value):
    return NamedOid(value)


class TestOidCodec:
    def test_named_round_trip(self):
        for value in ("mary", 30, "New York"):
            assert decode_oid(encode_oid(n(value))) == n(value)

    def test_virtual_round_trip(self):
        nested = VirtualOid(VirtualOid(n("tc"), n("kids")), n("peter"),
                            (n(1994),))
        assert decode_oid(encode_oid(nested)) == nested

    @pytest.mark.parametrize("bad", [
        42, "x", {"z": 1}, {"v": []}, {"v": [1]}, {"n": True}, {"n": [1]},
    ])
    def test_malformed_oids_rejected(self, bad):
        with pytest.raises(SerializationError):
            decode_oid(bad)


class TestDatabaseRoundTrip:
    def build(self) -> Database:
        db = Database()
        db.subclass("automobile", "vehicle")
        db.add_object("car1", classes=["automobile"],
                      scalars={"color": "red", "cylinders": 4})
        db.add_object("p1", classes=["employee"],
                      sets={"vehicles": ["car1"]})
        db.alias("auto1", "car1")
        subject = db.lookup_name("john")
        db.assert_scalar(n("salary"), subject, (n(1994),), n(1000))
        boss = VirtualOid(n("boss"), n("p1"))
        db.assert_scalar(n("boss"), n("p1"), (), boss)
        return db

    def test_round_trip_preserves_everything(self):
        db = self.build()
        restored = loads(dumps(db))
        assert restored.universe() == db.universe()
        assert set(restored.hierarchy.declared_edges()) == \
            set(db.hierarchy.declared_edges())
        assert dict(restored.scalars.items()) == dict(db.scalars.items())
        assert dict(restored.sets.items()) == dict(db.sets.items())
        assert restored.lookup_name("auto1") == n("car1")

    def test_round_trip_is_stable(self):
        db = self.build()
        once = dumps(db)
        assert dumps(loads(once)) == once

    def test_reflexive_flag_preserved(self):
        db = Database(reflexive_isa=True)
        db.subclass("a", "b")
        assert loads(dumps(db)).hierarchy.reflexive

    def test_invalid_json(self):
        with pytest.raises(SerializationError, match="invalid JSON"):
            loads("{nope")

    def test_wrong_version(self):
        with pytest.raises(SerializationError, match="version"):
            loads('{"format": 99}')
