"""Parser tests: every syntactic form of Definition 1 plus rules."""

import pytest

from repro.core.ast import (
    SELF,
    Comparison,
    IsaFilter,
    Molecule,
    Name,
    Paren,
    Path,
    ScalarFilter,
    SetEnumFilter,
    SetFilter,
    Var,
)
from repro.errors import PathLogSyntaxError, WellFormednessError
from repro.lang.parser import (
    parse_literal,
    parse_program,
    parse_query,
    parse_reference,
    parse_rule,
)


class TestPrimaries:
    def test_name_variable_integer(self):
        assert parse_reference("mary") == Name("mary")
        assert parse_reference("X") == Var("X")
        assert parse_reference("1994") == Name(1994)

    def test_quoted_name(self):
        assert parse_reference('"New York"') == Name("New York")

    def test_paren(self):
        assert parse_reference("(mary)") == Paren(Name("mary"))


class TestPaths:
    def test_scalar_path(self):
        assert parse_reference("mary.boss") == Path(Name("mary"),
                                                    Name("boss"), ())

    def test_set_path(self):
        ref = parse_reference("p1..assistants")
        assert ref == Path(Name("p1"), Name("assistants"), (),
                           set_valued=True)

    def test_path_with_params(self):
        ref = parse_reference("john.salary@(1994)")
        assert ref == Path(Name("john"), Name("salary"), (Name(1994),))

    def test_path_with_empty_params(self):
        assert parse_reference("mary.boss@()") == parse_reference("mary.boss")

    def test_left_to_right_composition(self):
        ref = parse_reference("a.b.c")
        assert ref == Path(Path(Name("a"), Name("b"), ()), Name("c"), ())

    def test_variable_method(self):
        assert parse_reference("x.M") == Path(Name("x"), Var("M"), ())

    def test_paren_method(self):
        ref = parse_reference("x.(M.tc)")
        assert ref == Path(Name("x"),
                           Paren(Path(Var("M"), Name("tc"), ())), ())


class TestMolecules:
    def test_scalar_filter(self):
        ref = parse_reference("mary[age -> 30]")
        assert ref == Molecule(Name("mary"),
                               (ScalarFilter(Name("age"), (), Name(30)),))

    def test_filter_list_shares_base(self):
        ref = parse_reference("mary[age -> 30; boss -> peter]")
        assert isinstance(ref, Molecule)
        assert len(ref.filters) == 2

    def test_selector_desugars_to_self(self):
        ref = parse_reference("x.color[Z]")
        assert ref == Molecule(
            Path(Name("x"), Name("color"), ()),
            (ScalarFilter(SELF, (), Var("Z")),),
        )

    def test_explicit_self_equals_selector(self):
        assert parse_reference("x[self -> Z]") == parse_reference("x[Z]")

    def test_set_filter(self):
        ref = parse_reference("p2[friends ->> p1..assistants]")
        filt = ref.filters[0]
        assert isinstance(filt, SetFilter)

    def test_enum_filter(self):
        ref = parse_reference("p2[friends ->> {p3, p4}]")
        filt = ref.filters[0]
        assert isinstance(filt, SetEnumFilter)
        assert filt.elements == (Name("p3"), Name("p4"))

    def test_empty_filters(self):
        ref = parse_reference("john.spouse[]")
        assert isinstance(ref, Molecule)
        assert ref.filters == ()

    def test_isa(self):
        assert parse_reference("x : c") == Molecule(Name("x"),
                                                    (IsaFilter(Name("c")),))

    def test_isa_binds_simple_class_then_path(self):
        # Paper: L : integer.list applies list to an integer L ...
        chained = parse_reference("L : integer.list")
        assert isinstance(chained, Path)
        assert chained.base == Molecule(Var("L"), (IsaFilter(Name("integer")),))
        # ... while L : (integer.list) is membership in the list class.
        grouped = parse_reference("L : (integer.list)")
        assert isinstance(grouped, Molecule)
        assert grouped.filters[0].cls == Paren(
            Path(Name("integer"), Name("list"), ())
        )

    def test_filter_with_params(self):
        ref = parse_reference("s0[grade@(crs1) -> G]")
        filt = ref.filters[0]
        assert filt.args == (Name("crs1"),)

    def test_nested_molecule_in_filter(self):
        ref = parse_reference("mary.spouse[boss -> mary[age -> 25]]")
        assert isinstance(ref.filters[0].result, Molecule)


class TestPaperFlagship:
    def test_example_2_1_structure(self):
        ref = parse_reference(
            "X : employee[age -> 30; city -> newYork]"
            "..vehicles : automobile[cylinders -> 4].color[Z]"
        )
        # Outermost: the [Z] selector molecule over .color
        assert isinstance(ref, Molecule)
        color_path = ref.base
        assert isinstance(color_path, Path)
        assert color_path.method == Name("color")


class TestRulesAndPrograms:
    def test_fact(self):
        rule = parse_rule("p1 : employee.")
        assert rule.is_fact

    def test_rule_with_body(self):
        rule = parse_rule("X[power -> Y] <- X : automobile.engine[power -> Y].")
        assert len(rule.body) == 1

    def test_comparison_literal(self):
        literal = parse_literal("X.age >= 30")
        assert isinstance(literal, Comparison)
        assert literal.op == ">="

    def test_query_with_prefix_and_dot(self):
        literals = parse_query("?- X : employee, X.age[A].")
        assert len(literals) == 2

    def test_program_parses_multiple_statements(self):
        program = parse_program("""
            % facts
            p1 : employee.
            p1[age -> 30].
            X[a -> 1] <- X : employee.
        """)
        assert len(program) == 3
        assert len(program.facts) == 2

    def test_wellformedness_enforced_by_default(self):
        with pytest.raises(WellFormednessError):
            parse_reference("p2[boss -> p1..assistants]")
        parse_reference("p2[boss -> p1..assistants]", check=False)


class TestErrors:
    @pytest.mark.parametrize("text", [
        "",                      # nothing
        "x[",                    # unclosed bracket
        "x[a ->]",               # missing result
        "x : ",                  # missing class
        "x.b@(",                 # unclosed params
        "x..",                   # missing method -- '..' then EOF
        "x[a.b -> c]",           # non-simple filter method
        "x[Y@(p)]",              # selector with params
    ])
    def test_syntax_errors(self, text):
        with pytest.raises(PathLogSyntaxError):
            parse_reference(text)

    def test_rule_needs_terminator(self):
        with pytest.raises(PathLogSyntaxError):
            parse_rule("p1 : employee")

    def test_error_carries_location(self):
        with pytest.raises(PathLogSyntaxError) as exc:
            parse_reference("x[a ->]")
        assert exc.value.line == 1
        assert exc.value.column > 1
