"""EngineLimits failure paths, uniformly across all four executors.

Every limit must fail the same way no matter which executor runs the
plan: a typed :class:`ResourceLimitError` whose message names the
``EngineLimits`` field to raise, and an input database left exactly as
it was (the engine evaluates against a pre-clone snapshot).
"""

import pytest

from repro.engine import Engine, EngineLimits
from repro.errors import PathLogError, ResourceLimitError
from repro.lang.parser import parse_program
from repro.oodb.database import Database

EXECUTORS = ["columnar", "batch", "compiled", "interpreted"]

#: A 12-deep chain: the desc fixpoint needs ~12 semi-naive iterations.
CHAIN = "\n".join(
    f"c{i}[kids ->> {{c{i + 1}}}]." for i in range(12)
) + """
    X[desc ->> {Y}] <- X[kids ->> {Y}].
    X[desc ->> {Y}] <- X..desc[kids ->> {Y}].
"""

#: Unbounded virtual creation: every person's boss is a person.
RUNAWAY = """
    p1 : person.
    X.boss : person <- X : person.
"""


def evaluate(text, *, limits, executor):
    db = Database()
    before = db.data_version()
    engine = Engine(db, parse_program(text), limits=limits,
                    executor=executor)
    try:
        engine.run()
    finally:
        # Whatever happened, the input database was never touched.
        assert len(db) == 0
        assert db.data_version() == before


class TestMaxIterations:
    @pytest.mark.parametrize("executor", EXECUTORS)
    def test_typed_error_names_the_limit(self, executor):
        limits = EngineLimits(max_iterations=3)
        with pytest.raises(ResourceLimitError) as info:
            evaluate(CHAIN, limits=limits, executor=executor)
        assert "max_iterations" in str(info.value)
        assert "3" in str(info.value)
        assert isinstance(info.value, PathLogError)

    @pytest.mark.parametrize("executor", EXECUTORS)
    def test_roomy_limit_passes(self, executor):
        evaluate(CHAIN, limits=EngineLimits(max_iterations=100),
                 executor=executor)


class TestMaxUniverse:
    @pytest.mark.parametrize("executor", EXECUTORS)
    def test_typed_error_names_the_limit(self, executor):
        limits = EngineLimits(max_universe=10, max_virtual_depth=10_000)
        with pytest.raises(ResourceLimitError) as info:
            evaluate(RUNAWAY, limits=limits, executor=executor)
        assert "max_universe" in str(info.value)
        assert "10" in str(info.value)


class TestMaxVirtualDepth:
    @pytest.mark.parametrize("executor", EXECUTORS)
    def test_typed_error_names_the_limit(self, executor):
        limits = EngineLimits(max_virtual_depth=5)
        with pytest.raises(ResourceLimitError) as info:
            evaluate(RUNAWAY, limits=limits, executor=executor)
        assert "max_virtual_depth" in str(info.value)
        # The historical wording stays greppable.
        assert "nesting" in str(info.value)
