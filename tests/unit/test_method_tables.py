"""Method table tests: storage, conflicts, index/scan parity."""

import pytest

from repro.errors import ScalarConflictError
from repro.oodb.methods import ScalarMethodTable, SetMethodTable
from repro.oodb.oid import NamedOid


def n(value):
    return NamedOid(value)


@pytest.fixture(params=[True, False], ids=["indexed", "scan"])
def scalar_table(request):
    table = ScalarMethodTable(indexed=request.param)
    table.put(n("age"), n("p1"), (), n(30))
    table.put(n("age"), n("p2"), (), n(45))
    table.put(n("city"), n("p1"), (), n("newYork"))
    table.put(n("salary"), n("p1"), (n(1994),), n(1000))
    return table


@pytest.fixture(params=[True, False], ids=["indexed", "scan"])
def set_table(request):
    table = SetMethodTable(indexed=request.param)
    table.add(n("kids"), n("peter"), (), n("tim"))
    table.add(n("kids"), n("peter"), (), n("mary"))
    table.add(n("kids"), n("tim"), (), n("sally"))
    table.add(n("friends"), n("p2"), (), n("tim"))
    return table


class TestScalarTable:
    def test_get(self, scalar_table):
        assert scalar_table.get(n("age"), n("p1")) == n(30)
        assert scalar_table.get(n("age"), n("p3")) is None

    def test_args_distinguish_applications(self, scalar_table):
        assert scalar_table.get(n("salary"), n("p1"), (n(1994),)) == n(1000)
        assert scalar_table.get(n("salary"), n("p1")) is None

    def test_duplicate_put_returns_false(self, scalar_table):
        assert scalar_table.put(n("age"), n("p1"), (), n(30)) is False

    def test_conflict_raises(self, scalar_table):
        with pytest.raises(ScalarConflictError):
            scalar_table.put(n("age"), n("p1"), (), n(31))

    def test_match_by_method(self, scalar_table):
        rows = list(scalar_table.match(method=n("age")))
        assert len(rows) == 2

    def test_match_by_method_and_result(self, scalar_table):
        rows = list(scalar_table.match(method=n("age"), result=n(45)))
        assert [key[1] for key, _ in rows] == [n("p2")]

    def test_match_by_subject(self, scalar_table):
        rows = list(scalar_table.match(subject=n("p1")))
        assert len(rows) == 3

    def test_match_all(self, scalar_table):
        assert len(list(scalar_table.match())) == len(scalar_table) == 4

    def test_remove(self, scalar_table):
        assert scalar_table.remove(n("age"), n("p1"), ())
        assert scalar_table.get(n("age"), n("p1")) is None
        assert not list(scalar_table.match(method=n("age"), result=n(30)))
        assert scalar_table.remove(n("age"), n("p1"), ()) is False

    def test_methods(self, scalar_table):
        assert scalar_table.methods() == {n("age"), n("city"), n("salary")}

    def test_clone_independent(self, scalar_table):
        copy = scalar_table.clone()
        copy.put(n("age"), n("p9"), (), n(1))
        assert scalar_table.get(n("age"), n("p9")) is None


class TestSetTable:
    def test_get_returns_frozenset(self, set_table):
        assert set_table.get(n("kids"), n("peter")) == {n("tim"), n("mary")}
        assert set_table.get(n("kids"), n("nobody")) == frozenset()

    def test_duplicate_add_returns_false(self, set_table):
        assert set_table.add(n("kids"), n("peter"), (), n("tim")) is False

    def test_len_counts_memberships(self, set_table):
        assert len(set_table) == 4
        assert set_table.applications() == 3

    def test_match_by_method(self, set_table):
        rows = list(set_table.match(method=n("kids")))
        assert len(rows) == 3

    def test_match_by_method_and_member(self, set_table):
        rows = list(set_table.match(method=n("kids"), member=n("tim")))
        assert [key[1] for key, _ in rows] == [n("peter")]

    def test_match_by_subject(self, set_table):
        rows = list(set_table.match(subject=n("peter")))
        assert {member for _, member in rows} == {n("tim"), n("mary")}

    def test_discard(self, set_table):
        assert set_table.discard(n("kids"), n("peter"), (), n("tim"))
        assert n("tim") not in set_table.get(n("kids"), n("peter"))
        assert set_table.discard(n("kids"), n("peter"), (), n("tim")) is False

    def test_defined_even_when_emptied(self, set_table):
        set_table.discard(n("friends"), n("p2"), (), n("tim"))
        assert set_table.defined(n("friends"), n("p2"))
        assert set_table.get(n("friends"), n("p2")) == frozenset()

    def test_clone_independent(self, set_table):
        copy = set_table.clone()
        copy.add(n("kids"), n("peter"), (), n("extra"))
        assert n("extra") not in set_table.get(n("kids"), n("peter"))


class TestIndexScanParity:
    """The same queries must give identical results with indexes off."""

    def test_scalar_parity(self):
        indexed = ScalarMethodTable(indexed=True)
        scan = ScalarMethodTable(indexed=False)
        facts = [
            (n("a"), n("s1"), (), n(1)),
            (n("a"), n("s2"), (), n(2)),
            (n("b"), n("s1"), (n("x"),), n(1)),
        ]
        for fact in facts:
            indexed.put(*fact)
            scan.put(*fact)
        for pattern in [{}, {"method": n("a")}, {"subject": n("s1")},
                        {"method": n("a"), "result": n(1)}]:
            assert (sorted(indexed.match(**pattern), key=str)
                    == sorted(scan.match(**pattern), key=str))

    def test_set_parity(self):
        indexed = SetMethodTable(indexed=True)
        scan = SetMethodTable(indexed=False)
        for member in ("x", "y", "z"):
            indexed.add(n("m"), n("s"), (), n(member))
            scan.add(n("m"), n("s"), (), n(member))
        for pattern in [{}, {"method": n("m")}, {"subject": n("s")},
                        {"method": n("m"), "member": n("y")}]:
            assert (sorted(indexed.match(**pattern), key=str)
                    == sorted(scan.match(**pattern), key=str))
