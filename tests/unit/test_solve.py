"""Conjunction solver tests: joins, ordering, existence."""

import pytest

from repro.core.ast import Name, Var
from repro.engine.solve import atom_cost, exists, solve
from repro.flogic.atoms import (
    ComparisonAtom,
    IsaAtom,
    ScalarAtom,
    SetMemberAtom,
    SupersetAtom,
)
from repro.flogic.flatten import flatten_conjunction
from repro.lang.parser import parse_query, parse_reference
from repro.oodb.database import Database
from repro.oodb.oid import NamedOid


def n(value):
    return NamedOid(value)


@pytest.fixture
def db():
    db = Database()
    db.subclass("automobile", "vehicle")
    for i, color in enumerate(["red", "blue", "red"]):
        db.add_object(f"car{i}", classes=["automobile"],
                      scalars={"color": color, "cylinders": 4 if i else 6})
    db.add_object("p1", classes=["employee"], scalars={"age": 30},
                  sets={"vehicles": ["car0", "car1"]})
    db.add_object("p2", classes=["employee"], scalars={"age": 40},
                  sets={"vehicles": ["car2"]})
    return db


def answers(db, text, *names):
    atoms = flatten_conjunction(parse_query(text))
    return {
        tuple(b[Var(name)] for name in names)
        for b in solve(db, atoms)
    }


class TestJoins:
    def test_two_atom_join(self, db):
        got = answers(db, "X : employee..vehicles[color -> red]", "X")
        assert got == {(n("p1"),), (n("p2"),)}

    def test_three_way_join_with_projection(self, db):
        got = answers(db, "X : employee..vehicles[color -> C]", "X", "C")
        assert got == {
            (n("p1"), n("red")), (n("p1"), n("blue")), (n("p2"), n("red")),
        }

    def test_comparison_in_conjunction(self, db):
        got = answers(db, "X : employee, X.age >= 35", "X")
        assert got == {(n("p2"),)}

    def test_no_solutions(self, db):
        assert answers(db, "X : employee[age -> 99]", "X") == set()

    def test_shared_variable_constrains(self, db):
        # Employees whose vehicle color matches another employee's.
        got = answers(
            db,
            "X : employee..vehicles[color -> C], "
            "Y : employee..vehicles[color -> C], X != Y",
            "X", "Y",
        )
        assert got == {(n("p1"), n("p2")), (n("p2"), n("p1"))}

    def test_initial_binding_respected(self, db):
        atoms = flatten_conjunction(parse_query("X : employee"))
        out = list(solve(db, atoms, {Var("X"): n("p1")}))
        assert out == [{Var("X"): n("p1")}]


class TestExists:
    def test_exists(self, db):
        atoms = flatten_conjunction(parse_query("p1 : employee"))
        assert exists(db, atoms)
        atoms2 = flatten_conjunction(parse_query("p1 : automobile"))
        assert not exists(db, atoms2)


class TestOrderingHeuristic:
    def test_ready_comparison_is_free(self, db):
        ready = ComparisonAtom("<", Var("X"), Name(3))
        assert atom_cost(db, ready, {Var("X"): n(1)}) < 0
        assert atom_cost(db, ready, {}) > 1e8

    def test_superset_atoms_deferred(self, db):
        superset = SupersetAtom(Name("friends"), Var("W"), (),
                                parse_reference("p1..vehicles"))
        data = ScalarAtom(Name("color"), Var("V"), (), Var("C"))
        assert atom_cost(db, superset, {}) > atom_cost(db, data, {})

    def test_bound_method_cheaper_than_unbound(self, db):
        bound = ScalarAtom(Name("color"), Var("V"), (), Var("C"))
        unbound = ScalarAtom(Var("M"), Var("V"), (), Var("C"))
        assert atom_cost(db, bound, {}) < atom_cost(db, unbound, {})

    def test_isa_cost_depends_on_boundness(self, db):
        atom = IsaAtom(Var("O"), Var("C"))
        assert (atom_cost(db, atom, {Var("O"): n("car0")})
                < atom_cost(db, atom, {}))

    def test_order_independence_of_answers(self, db):
        # The same conjunction written in different literal orders gives
        # the same answer set.
        forward = answers(
            db, "X : employee..vehicles[color -> red], X.age[A]", "X", "A")
        backward = answers(
            db, "X.age[A], X : employee..vehicles[color -> red]", "X", "A")
        assert forward == backward
