"""Plan-compiler tests: kernel selection, slot execution, delta seeds."""

import pytest

from repro.core.ast import Name, Var
from repro.engine.compile import (
    CompiledPlan,
    compile_delta_plan,
    compile_plan,
)
from repro.engine.matching import UNRESTRICTED, MatchPolicy, match_atom_delta
from repro.engine.planner import build_plan, relevant_bound
from repro.engine.solve import execute_plan, solve
from repro.errors import EvaluationError
from repro.flogic.atoms import ScalarAtom, SetMemberAtom
from repro.flogic.flatten import flatten_conjunction
from repro.lang.parser import parse_query
from repro.oodb.database import Database
from repro.oodb.oid import NamedOid


def n(value):
    return NamedOid(value)


@pytest.fixture
def db():
    db = Database()
    db.subclass("automobile", "vehicle")
    for i, color in enumerate(["red", "blue", "red"]):
        db.add_object(f"car{i}", classes=["automobile"],
                      scalars={"color": color, "cylinders": 4 if i else 6})
    db.add_object("p1", classes=["employee"], scalars={"age": 30},
                  sets={"vehicles": ["car0", "car1"]})
    db.add_object("p2", classes=["employee"], scalars={"age": 40},
                  sets={"vehicles": ["car2"]})
    return db


def atoms_for(text):
    return flatten_conjunction(parse_query(text))


def compiled_answers(db, text, bound=()):
    atoms = atoms_for(text)
    plan = build_plan(db, atoms, bound)
    return compile_plan(db, plan), atoms


def answer_set(bindings):
    return {frozenset(b.items()) for b in bindings}


class TestKernelSelection:
    def test_bound_probe_kernels(self, db):
        compiled, _ = compiled_answers(db, "Y[color -> blue]")
        assert compiled.kernel_names == ("scalar mr-probe",)
        compiled, _ = compiled_answers(
            db, "Y[color -> blue], X[vehicles ->> {Y}]")
        assert compiled.kernel_names == ("scalar mr-probe", "set mm-probe")

    def test_subject_navigation_kernels(self, db):
        atoms = atoms_for("X[vehicles ->> {V}], V[color -> C]")
        plan = build_plan(db, atoms, {Var("X")})
        compiled = compile_plan(db, plan)
        assert compiled.kernel_names == ("set iter", "scalar get")

    def test_unbound_method_uses_subject_probe(self, db):
        compiled, _ = compiled_answers(db, "p1[M ->> {V}]")
        assert compiled.kernel_names == ("set s-probe",)

    def test_unindexed_store_compiles_scans(self):
        db = Database(indexed=False)
        db.add_object("car0", scalars={"color": "red"})
        compiled, _ = compiled_answers(db, "Y[color -> red]")
        assert compiled.kernel_names == ("scalar filtered-scan",)

    def test_superset_and_negation_bridge(self, db):
        compiled, _ = compiled_answers(
            db, "X[vehicles ->> p2..vehicles], not X[age -> 30]")
        assert "superset (interp)" in compiled.kernel_names
        assert "negation (interp)" in compiled.kernel_names

    def test_builtin_self_kernels(self, db):
        compiled, _ = compiled_answers(db, "p1.self[Y]")
        assert compiled.kernel_names[0] == "self fwd"


class TestExecutionParity:
    QUERIES = [
        "X : employee..vehicles[color -> red]",
        "X : employee..vehicles[color -> C]",
        "X : employee, X.age >= 35",
        "X[color -> X]",                     # repeated var: scan, not probe
        "X : X",                             # repeated var in isa
        "X.self[Y]",                         # builtin over the universe
        "p3[M ->> {V}], V[color -> red]",    # empty subject bucket
        "X[vehicles ->> p2..vehicles]",      # superset bridge
        "X : employee, not X[age -> 30]",    # negation bridge
    ]

    @pytest.mark.parametrize("text", QUERIES)
    def test_matches_dynamic_solver(self, db, text):
        atoms = atoms_for(text)
        plan = build_plan(db, atoms)
        got = answer_set(compile_plan(db, plan).execute())
        want = answer_set(solve(db, atoms, use_planner=False))
        assert got == want

    def test_seed_binding_is_respected(self, db):
        atoms = atoms_for("X : employee")
        bound = relevant_bound(atoms, {Var("X")})
        plan = build_plan(db, atoms, bound)
        compiled = compile_plan(db, plan)
        out = list(compiled.execute({Var("X"): n("p1")}))
        assert out == [{Var("X"): n("p1")}]

    def test_mismatched_seed_binding_raises(self, db):
        atoms = atoms_for("X : employee, X[age -> A]")
        plan = build_plan(db, atoms)  # compiled for nothing bound
        compiled = compile_plan(db, plan)
        with pytest.raises(EvaluationError, match="bound-variable|binds"):
            list(compiled.execute({Var("A"): n(30)}))

    def test_missing_seed_binding_raises(self, db):
        # A plan compiled with X bound must refuse a seed that does not
        # bind X (silently probing with an empty register would return
        # wrong answers).
        atoms = atoms_for("X[age -> A]")
        plan = build_plan(db, atoms, {Var("X")})
        compiled = compile_plan(db, plan)
        with pytest.raises(EvaluationError, match="does not bind|no seed"):
            list(compiled.execute())
        with pytest.raises(EvaluationError, match="does not bind"):
            list(compiled.execute({Var("A"): n(30), Var("Q"): n(1)}))

    def test_extra_foreign_seed_variables_flow_through(self, db):
        # Variables without slots ride along in every solution, exactly
        # like the interpreted executor's dict extension.
        atoms = atoms_for("X : employee")
        plan = build_plan(db, atoms)
        compiled = compile_plan(db, plan)
        out = list(compiled.execute({Var("Z"): n("foreign")}))
        assert all(b[Var("Z")] == n("foreign") for b in out)
        assert {b[Var("X")] for b in out} == {n("p1"), n("p2")}

    def test_unready_comparison_raises_at_run_time(self, db):
        from repro.engine.planner import Plan, PlanStep
        from repro.flogic.atoms import ComparisonAtom

        atom = ComparisonAtom("<", Var("A"), Var("B"))
        plan = Plan((PlanStep(atom, 0.0, 1.0, "unready comparison"),),
                    frozenset())
        compiled = compile_plan(db, plan)
        assert compiled.kernel_names == ("compare unready",)
        with pytest.raises(EvaluationError, match="both sides bound"):
            list(compiled.execute())

    def test_counters_match_interpreted_executor(self, db):
        atoms = atoms_for("X : employee..vehicles[color -> C]")
        plan = build_plan(db, atoms)
        compiled_counts = [0] * len(plan.steps)
        interp_counts = [0] * len(plan.steps)
        got = answer_set(execute_plan(db, plan, counters=compiled_counts))
        want = answer_set(execute_plan(db, plan, counters=interp_counts,
                                       compiled=False))
        assert got == want
        assert compiled_counts == interp_counts

    def test_projection_restricts_output(self, db):
        atoms = atoms_for("X : employee..vehicles[color -> C]")
        plan = build_plan(db, atoms)
        execute = compile_plan(db, plan).executor(project=(Var("X"),))
        rows = list(execute({}))
        assert rows and all(set(b) == {Var("X")} for b in rows)


class TestCompilationCache:
    def test_memoised_per_database_and_policy(self, db):
        atoms = atoms_for("X : employee")
        plan = build_plan(db, atoms)
        first = compile_plan(db, plan)
        assert compile_plan(db, plan) is first
        deep = compile_plan(db, plan, MatchPolicy(2))
        assert deep is not first
        other = Database()
        assert compile_plan(other, plan) is not first

    def test_alias_invalidates_compiled_plans(self, db):
        # Regression: compiled plans resolve Name constants at compile
        # time, so aliasing must bump data_version (invalidating the
        # version-tracked plan cache) or a cached compiled plan would
        # keep probing the stale OID.
        from repro.query import Query

        db.add_object("car9", scalars={"color": "crimson"})
        q = Query(db)
        assert q.all("X[color -> crimson]")  # warm the compiled plan
        assert len(q.all("X[color -> red]")) == 2  # car0 and car2
        db.alias("red", "crimson")
        # "red" now denotes the crimson object, so only car9 matches --
        # and the compiled plan must re-resolve, not reuse the old OID.
        after = {str(a.value("X")) for a in q.all("X[color -> red]")}
        assert after == {"car9"}
        assert q.plan_cache.invalidations >= 1

    def test_compiled_form_sees_new_facts(self, db):
        # Kernels capture the live index dicts, so facts added after
        # compilation are visible (the engine relies on this within a
        # fixpoint run).
        atoms = atoms_for("Y[color -> red]")
        plan = build_plan(db, atoms)
        compiled = compile_plan(db, plan)
        before = len(list(compiled.execute()))
        db.add_object("car9", scalars={"color": "red"})
        assert len(list(compiled.execute())) == before + 1


class TestDeltaPlans:
    def test_delta_seed_matches_interpreted_seeding(self, db):
        atom = SetMemberAtom(Name("vehicles"), Var("X"), (), Var("V"))
        rest = atoms_for("V[color -> C]")
        bound = relevant_bound(rest, atom.variables())
        plan = build_plan(db, rest, bound)
        compiled = compile_delta_plan(db, atom, plan)
        delta = [
            ("set", n("vehicles"), n("p1"), (), n("car2")),
            ("set", n("other"), n("p1"), (), n("car0")),
            ("scalar", n("vehicles"), n("p1"), (), n("car0")),
            ("isa", n("p1"), n("employee")),
        ]
        got = answer_set(compiled.execute(delta))
        want = set()
        for seed in match_atom_delta(db, atom, {}, delta, UNRESTRICTED):
            want |= answer_set(execute_plan(db, plan, seed, compiled=False))
        assert got == want
        assert compiled.kernel_names[0] == "delta-set seed"

    def test_delta_seed_respects_method_depth_policy(self, db):
        from repro.oodb.oid import VirtualOid

        deep = VirtualOid(n("tc"), VirtualOid(n("tc"), n("kids")))
        atom = ScalarAtom(Var("M"), Var("X"), (), Var("Y"))
        plan = build_plan(db, (), ())
        shallow = compile_delta_plan(db, atom, plan, MatchPolicy(1))
        delta = [("scalar", deep, n("p1"), (), n("p2")),
                 ("scalar", n("age"), n("p1"), (), n(50))]
        got = answer_set(shallow.execute(delta))
        want = answer_set(
            match_atom_delta(db, atom, {}, delta, MatchPolicy(1)))
        assert got == want
        assert len(got) == 1  # the deep virtual method is filtered out

    def test_concurrent_delta_executions_are_independent(self, db):
        # The delta log travels in a per-call register, so two live
        # generators from one compiled delta plan must not interfere.
        atom = SetMemberAtom(Name("vehicles"), Var("X"), (), Var("V"))
        rest = atoms_for("V[color -> C]")
        bound = relevant_bound(rest, atom.variables())
        plan = build_plan(db, rest, bound)
        compiled = compile_delta_plan(db, atom, plan)
        delta1 = [("set", n("vehicles"), n("p1"), (), n("car0"))]
        delta2 = [("set", n("vehicles"), n("p2"), (), n("car2"))]
        gen1 = compiled.execute(delta1)
        gen2 = compiled.execute(delta2)
        first = next(gen1)  # must still seed from delta1
        assert first[Var("X")] == n("p1")
        assert next(gen2)[Var("X")] == n("p2")

    def test_delta_counters_count_seeds_and_steps(self, db):
        atom = SetMemberAtom(Name("vehicles"), Var("X"), (), Var("V"))
        rest = atoms_for("V[color -> C]")
        bound = relevant_bound(rest, atom.variables())
        plan = build_plan(db, rest, bound)
        compiled = compile_delta_plan(db, atom, plan)
        counters = [0] * (len(plan.steps) + 1)
        delta = [("set", n("vehicles"), n("p1"), (), n("car0"))]
        list(compiled.executor(counters)(delta))
        assert counters[0] == 1  # one seed matched
        assert counters[1] == 1  # car0 has a color


class TestEngineIntegration:
    def test_engine_compiled_and_interpreted_agree(self):
        from repro.engine import Engine
        from repro.lang.parser import parse_program

        db = Database()
        for i in range(6):
            db.add_object(f"n{i}", scalars={"next": f"n{i + 1}"})
        program = parse_program("""
            X[reach ->> {Y}] <- X[next -> Y].
            X[reach ->> {Z}] <- X[reach ->> {Y}], Y[next -> Z].
        """)
        compiled = Engine(db, program, compiled=True)
        via_compiled = compiled.run()
        interpreted = Engine(db, program, compiled=False)
        via_interpreted = interpreted.run()
        assert ({(k, frozenset(v)) for k, v in via_compiled.sets.items()}
                == {(k, frozenset(v)) for k, v in via_interpreted.sets.items()})
        assert compiled.stats.plans_compiled > 0
        assert compiled.stats.tuples > 0
        # Both executors count seed and per-step rows, so the tuple
        # stat is comparable across modes.
        assert compiled.stats.tuples == interpreted.stats.tuples

    def test_engine_explain_names_kernels(self, db):
        from repro.engine import Engine
        from repro.lang.parser import parse_program

        program = parse_program("""
            X[flagged -> yes] <- X : employee..vehicles[color -> red].
        """)
        engine = Engine(db, program)
        engine.run()
        report = engine.plan_reports()[0]
        assert report.compiled
        assert all(step.kernel for step in report.steps)
        assert "kernel" in engine.explain()
