"""Pretty-printer tests: canonical text and parser inversion."""

import pytest

from repro.core.ast import Name, Rule, Var, isa, name
from repro.core.pretty import name_to_text, program_to_text, rule_to_text, to_text
from repro.lang.parser import parse_program, parse_reference, parse_rule


@pytest.mark.parametrize("text", [
    "mary",
    "X",
    "1994",
    "mary.boss",
    "p1..assistants",
    "john.salary@(1994)",
    "mary[age -> 30; boss -> peter]",
    "p2[friends ->> {p3, p4}]",
    "p2[friends ->> p1..assistants]",
    "x : c",
    "L : (integer.list)",
    "X[(M.tc) ->> {Y}]",
    "john.spouse[]",
    "x.color[Z]",
    "p1.paidFor@(p1..vehicles)",
    "X : employee[age -> 30; city -> newYork]"
    "..vehicles : automobile[cylinders -> 4].color[Z]",
])
def test_print_parse_is_identity_on_canonical_text(text):
    ref = parse_reference(text, check=False)
    assert to_text(ref) == text
    assert parse_reference(to_text(ref), check=False) == ref


class TestNameQuoting:
    def test_bare_lowercase(self):
        assert name_to_text("mary") == "mary"

    def test_integer(self):
        assert name_to_text(30) == "30"

    def test_capitalised_needs_quotes(self):
        assert name_to_text("Mary") == '"Mary"'
        assert parse_reference('"Mary"') == Name("Mary")

    def test_spaces_need_quotes(self):
        assert name_to_text("New York") == '"New York"'

    def test_quotes_and_backslashes_escaped(self):
        rendered = name_to_text('a"b\\c')
        assert parse_reference(rendered) == Name('a"b\\c')

    def test_digit_leading_string_needs_quotes(self):
        # "42" the string must not print as 42 the integer.
        assert name_to_text("42") == '"42"'
        assert parse_reference('"42"') == Name("42")


class TestRules:
    def test_fact_text(self):
        assert rule_to_text(Rule(isa(name("p1"), "employee"))) == \
            "p1 : employee."

    def test_rule_text_round_trips(self):
        text = "X[power -> Y] <- X : automobile.engine[power -> Y]."
        assert rule_to_text(parse_rule(text)) == text

    def test_comparison_in_rule(self):
        text = "X[senior -> yes] <- X : employee, X.age >= 60."
        assert rule_to_text(parse_rule(text)) == text

    def test_program_round_trips(self):
        text = "p1 : employee.\nX[a -> 1] <- X : employee."
        program = parse_program(text)
        assert program_to_text(program) == text
        assert parse_program(program_to_text(program)) == program
