"""Checkpoint and recovery tests: atomic snapshots, replay, repair."""

import json
import os

import pytest

from repro.oodb.checkpoint import (
    DurableStore,
    RecoveryError,
    load_snapshot,
    recover,
    snapshot_files,
    snapshot_name,
    write_snapshot,
)
from repro.oodb.database import Database
from repro.oodb.oid import NamedOid
from repro.oodb.serialize import FORMAT_VERSION, SerializationError
from repro.oodb.wal import frame, scan_segment, segment_files, segment_name
from repro.testing import InjectedFault, inject


def n(value):
    return NamedOid(value)


def seeded():
    db = Database()
    db.assert_isa(n("tom"), n("cat"))
    db.assert_scalar(n("age"), n("tom"), (), n(3))
    db.assert_set_member(n("likes"), n("tom"), (), n("fish"))
    db.alias("t", n("tom"))
    return db


def assert_same_state(left: Database, right: Database):
    assert set(left.hierarchy.declared_edges()) == \
        set(right.hierarchy.declared_edges())
    assert dict(left.scalars.items()) == dict(right.scalars.items())
    assert dict(left.sets.items()) == dict(right.sets.items())
    assert left._aliases == right._aliases


class TestSnapshots:
    def test_round_trip(self, tmp_path):
        db = seeded()
        path = write_snapshot(db, tmp_path, 5)
        assert path.name == snapshot_name(5)
        restored, cursor = load_snapshot(path)
        assert cursor == 5
        assert_same_state(db, restored)

    def test_byte_stable_across_writes(self, tmp_path):
        (tmp_path / "a").mkdir()
        (tmp_path / "b").mkdir()
        first = write_snapshot(seeded(), tmp_path / "a", 3)
        second = write_snapshot(seeded(), tmp_path / "b", 3)
        assert first.read_bytes() == second.read_bytes()

    def test_checksum_mismatch_rejected(self, tmp_path):
        path = write_snapshot(seeded(), tmp_path, 0)
        document = json.loads(path.read_text())
        document["checksum"] ^= 1
        path.write_text(json.dumps(document))
        with pytest.raises(SerializationError):
            load_snapshot(path)

    def test_format_version_mismatch_rejected(self, tmp_path):
        path = write_snapshot(seeded(), tmp_path, 0)
        document = json.loads(path.read_text())
        document["snapshot"]["format"] = FORMAT_VERSION + 1
        # Re-checksum so only the version (not integrity) is at fault.
        import zlib
        body = json.dumps(document["snapshot"], sort_keys=True,
                          separators=(",", ":"))
        document["checksum"] = zlib.crc32(body.encode())
        path.write_text(json.dumps(document))
        with pytest.raises(SerializationError):
            load_snapshot(path)

    def test_faulted_write_leaves_no_snapshot(self, tmp_path):
        with pytest.raises(InjectedFault):
            with inject("checkpoint.write"):
                write_snapshot(seeded(), tmp_path, 0)
        assert snapshot_files(tmp_path) == []

    def test_faulted_rename_leaves_only_temp(self, tmp_path):
        with pytest.raises(InjectedFault):
            with inject("checkpoint.rename"):
                write_snapshot(seeded(), tmp_path, 0)
        assert snapshot_files(tmp_path) == []
        assert list(tmp_path.glob("*.tmp"))


class TestRecover:
    def test_empty_directory_is_fresh(self, tmp_path):
        result = recover(tmp_path)
        assert result.fresh
        assert result.cursor == 0
        assert result.recovered_entries == 0

    def test_missing_directory_is_fresh(self, tmp_path):
        result = recover(tmp_path / "nowhere")
        assert result.fresh

    def test_snapshot_plus_wal_suffix(self, tmp_path):
        store = DurableStore.open(tmp_path)
        db = store.database
        db.assert_isa(n("a"), n("b"))
        store.commit()
        store.checkpoint()
        db.assert_isa(n("c"), n("d"))
        store.commit()
        store.close()
        result = recover(tmp_path)
        assert not result.fresh
        assert result.recovered_entries == 1  # only the post-snapshot entry
        assert result.cursor == store.durable_cursor()
        assert result.database.hierarchy.isa(n("a"), n("b"))
        assert result.database.hierarchy.isa(n("c"), n("d"))

    def test_corrupt_newest_snapshot_falls_back(self, tmp_path):
        store = DurableStore.open(tmp_path, db=seeded())
        db = store.database
        db.assert_isa(n("jerry"), n("mouse"))
        store.commit()
        store.checkpoint()
        store.close()
        newest = snapshot_files(tmp_path)[0][1]
        newest.write_text(newest.read_text()[:-10])
        result = recover(tmp_path)
        assert result.snapshots_skipped
        assert result.snapshot_path != newest
        # The WAL suffix past the older snapshot re-derives the state.
        assert result.database.hierarchy.isa(n("jerry"), n("mouse"))
        assert result.database.hierarchy.isa(n("tom"), n("cat"))

    def test_all_snapshots_corrupt_without_full_wal_raises(self, tmp_path):
        store = DurableStore.open(tmp_path, db=seeded())
        store.database.assert_isa(n("x"), n("y"))
        store.commit()
        store.checkpoint()
        store.close()
        for _, path in snapshot_files(tmp_path):
            path.write_text("{broken")
        # Remove any segment starting at 0 so the WAL cannot rebuild
        # from scratch.
        for start, path in segment_files(tmp_path):
            if start == 0:
                path.unlink()
        with pytest.raises(RecoveryError):
            recover(tmp_path)

    def test_wal_gap_raises(self, tmp_path):
        store = DurableStore.open(tmp_path)
        db = store.database
        db.assert_isa(n("a"), n("b"))
        store.commit()
        store.close()
        # Fabricate a later segment leaving a cursor gap.
        path = tmp_path / segment_name(10)
        path.write_bytes(frame({"wal": FORMAT_VERSION, "cursor": 10}))
        with pytest.raises(RecoveryError):
            recover(tmp_path)

    def test_torn_tail_truncated_and_counted(self, tmp_path):
        store = DurableStore.open(tmp_path)
        store.database.assert_isa(n("a"), n("b"))
        store.commit()
        store.close()
        _, path = segment_files(tmp_path)[-1]
        clean = path.stat().st_size
        with open(path, "ab") as handle:
            handle.write(b"\xde\xad\xbe\xef")
        result = recover(tmp_path)
        assert result.truncated_tail == 4
        assert path.stat().st_size == clean
        assert result.database.hierarchy.isa(n("a"), n("b"))
        # A second recovery sees a clean tail.
        assert recover(tmp_path).truncated_tail == 0

    def test_verify_mode_reports_without_trimming(self, tmp_path):
        store = DurableStore.open(tmp_path)
        store.database.assert_isa(n("a"), n("b"))
        store.commit()
        store.close()
        _, path = segment_files(tmp_path)[-1]
        with open(path, "ab") as handle:
            handle.write(b"\xde\xad")
        size = path.stat().st_size
        result = recover(tmp_path, trim=False)
        assert result.truncated_tail == 2
        assert path.stat().st_size == size

    def test_uncommitted_suffix_discarded(self, tmp_path):
        store = DurableStore.open(tmp_path)
        store.database.assert_isa(n("a"), n("b"))
        store.commit()
        store.close()
        _, path = segment_files(tmp_path)[-1]
        # Append a begin + entry with no commit marker: well-framed but
        # uncommitted, so recovery must not apply it.
        scan = scan_segment(path)
        head = scan.records[-1]["commit"]
        with open(path, "ab") as handle:
            handle.write(frame({"begin": head}))
            handle.write(frame({"e": ["+", ["isa", {"n": "ghost"},
                                             {"n": "spirit"}]]}))
        result = recover(tmp_path)
        assert result.discarded_records == 2
        assert not result.database.hierarchy.isa(n("ghost"), n("spirit"))
        assert result.cursor == head

    def test_semantically_stray_record_truncates_there(self, tmp_path):
        store = DurableStore.open(tmp_path)
        store.database.assert_isa(n("a"), n("b"))
        store.commit()
        store.close()
        _, path = segment_files(tmp_path)[-1]
        clean = path.stat().st_size
        # An entry outside any begin/commit group: frames fine, but is
        # semantically stray -- recovery must cut the tail at it so the
        # next recovery (when this segment is no longer final) does not
        # die mid-stream.
        with open(path, "ab") as handle:
            handle.write(frame({"e": ["+", ["isa", {"n": "g"},
                                             {"n": "s"}]]}))
            handle.write(frame({"weird": True}))
        appended = path.stat().st_size - clean
        result = recover(tmp_path)
        assert result.truncated_tail == appended
        assert path.stat().st_size == clean
        assert recover(tmp_path).truncated_tail == 0

    def test_duplicated_batch_replays_idempotently(self, tmp_path):
        store = DurableStore.open(tmp_path)
        store.database.assert_isa(n("a"), n("b"))
        store.commit()
        store.close()
        _, path = segment_files(tmp_path)[-1]
        scan = scan_segment(path)
        batch = [r for r in scan.records
                 if "begin" in r or "e" in r or "commit" in r]
        # A retried batch: the same begin/entries/commit appended again.
        with open(path, "ab") as handle:
            for record in batch:
                handle.write(frame(record))
        result = recover(tmp_path)
        assert result.database.hierarchy.isa(n("a"), n("b"))
        assert result.cursor == scan.records[-1]["commit"]


class TestDurableStore:
    def test_open_seeds_empty_directory(self, tmp_path):
        store = DurableStore.open(tmp_path, db=seeded())
        store.close()
        result = recover(tmp_path)
        assert result.database.hierarchy.isa(n("tom"), n("cat"))

    def test_open_ignores_seed_when_state_exists(self, tmp_path):
        store = DurableStore.open(tmp_path, db=seeded())
        store.close()
        other = Database()
        other.assert_isa(n("impostor"), n("seed"))
        store = DurableStore.open(tmp_path, db=other)
        assert store.database.hierarchy.isa(n("tom"), n("cat"))
        assert not store.database.hierarchy.isa(n("impostor"), n("seed"))
        store.close()

    def test_checkpoint_rotates_and_reclaims(self, tmp_path):
        store = DurableStore.open(tmp_path, retain_snapshots=2)
        for index in range(4):
            store.database.assert_isa(n(f"o{index}"), n("thing"))
            store.commit()
            store.checkpoint()
        store.close()
        assert len(snapshot_files(tmp_path)) == 2
        # Reclaim keeps only the segments the retained snapshots need.
        oldest_kept = snapshot_files(tmp_path)[-1][0]
        for start, _ in segment_files(tmp_path)[1:]:
            assert start >= oldest_kept
        result = recover(tmp_path)
        for index in range(4):
            assert result.database.hierarchy.isa(n(f"o{index}"), n("thing"))

    def test_disruption_falls_back_to_checkpoint(self, tmp_path):
        store = DurableStore.open(tmp_path)
        db = store.database
        db.alias("t", n("tom"))
        db.assert_isa(n("tom"), n("cat"))
        store.commit()
        db.alias("t", n("thomas"))  # disrupts the change log
        assert store.commit() == 0  # degraded to a checkpoint, not lost
        db.assert_isa(n("jerry"), n("mouse"))
        assert store.commit() == 1  # journalling resumed after reattach
        store.close()
        result = recover(tmp_path)
        assert result.database._aliases["t"] == n("thomas")
        assert result.database.hierarchy.isa(n("jerry"), n("mouse"))

    def test_double_crash_during_recovery_checkpoint(self, tmp_path):
        """Crashing inside the checkpoint ``open`` itself writes must
        leave the directory recoverable (the previous snapshot and
        segments are untouched until the rename)."""
        store = DurableStore.open(tmp_path)
        store.database.assert_isa(n("a"), n("b"))
        store.commit()
        store.close()
        for site in ("checkpoint.write", "checkpoint.rename"):
            with pytest.raises(InjectedFault):
                with inject(site):
                    DurableStore.open(tmp_path)
            store = DurableStore.open(tmp_path)
            assert store.database.hierarchy.isa(n("a"), n("b"))
            store.close()

    def test_close_journals_final_batch(self, tmp_path):
        store = DurableStore.open(tmp_path)
        store.database.assert_isa(n("last"), n("word"))
        store.close()  # commit=True by default
        result = recover(tmp_path)
        assert result.database.hierarchy.isa(n("last"), n("word"))
