"""O2SQL frontend tests: compilation and evaluation."""

import pytest

from repro.core.ast import Comparison, Molecule, Var
from repro.errors import PathLogSyntaxError
from repro.frontends import compile_o2sql, run_o2sql
from repro.oodb.database import Database


@pytest.fixture
def db():
    db = Database()
    db.subclass("automobile", "vehicle")
    db.add_object("car1", classes=["automobile"],
                  scalars={"color": "red", "producedBy": "gm"})
    db.add_object("bike1", classes=["vehicle"], scalars={"color": "green"})
    db.add_object("p1", classes=["employee"],
                  sets={"vehicles": ["car1", "bike1"]})
    db.add_object("gm", scalars={"city": "detroit"})
    return db


class TestCompilation:
    def test_from_class_becomes_isa(self):
        compiled = compile_o2sql("SELECT X FROM X IN employee")
        assert len(compiled.literals) == 1
        assert isinstance(compiled.literals[0], Molecule)
        assert compiled.select == (("X", Var("X")),)

    def test_from_path_becomes_selector(self):
        compiled = compile_o2sql(
            "SELECT Y FROM X IN employee FROM Y IN X.vehicles")
        assert len(compiled.literals) == 2

    def test_where_in_is_isa(self):
        compiled = compile_o2sql(
            "SELECT Y FROM Y IN vehicle WHERE Y IN automobile")
        assert len(compiled.literals) == 2

    def test_where_equality_is_comparison(self):
        compiled = compile_o2sql(
            "SELECT X FROM X IN employee WHERE X.city = detroit")
        assert isinstance(compiled.literals[-1], Comparison)

    def test_select_path_gets_fresh_variable(self):
        compiled = compile_o2sql("SELECT Y.color FROM Y IN automobile")
        label, var = compiled.select[0]
        assert label == "Y.color"
        assert var.name.startswith("_S")

    def test_keywords_case_insensitive(self):
        compiled = compile_o2sql("select X from X in employee")
        assert compiled.select == (("X", Var("X")),)

    @pytest.mark.parametrize("text", [
        "FROM X IN employee",                      # missing SELECT
        "SELECT X FROM x IN employee",             # range var not capitalised
        "SELECT X FROM X IN employee WHERE X ~ y", # bad condition
        "SELECT X FROM X IN employee garbage",     # trailing tokens
    ])
    def test_errors(self, text):
        with pytest.raises(PathLogSyntaxError):
            compile_o2sql(text)


class TestEvaluation:
    def test_paper_1_1(self, db):
        rows = run_o2sql(db, """
            SELECT Y.color
            FROM X IN employee
            FROM Y IN X.vehicles
            WHERE Y IN automobile
        """)
        assert {row.value("Y.color") for row in rows} == {"red"}

    def test_multi_column_select(self, db):
        rows = run_o2sql(db, """
            SELECT Y, Y.color
            FROM X IN employee
            FROM Y IN X.vehicles
        """)
        got = {(row.value("Y"), row.value("Y.color")) for row in rows}
        assert got == {("car1", "red"), ("bike1", "green")}

    def test_where_equality_on_paths(self, db):
        rows = run_o2sql(db, """
            SELECT Y
            FROM Y IN automobile
            WHERE Y.producedBy.city = detroit
        """)
        assert [row.value("Y") for row in rows] == ["car1"]

    def test_empty_result(self, db):
        rows = run_o2sql(db, """
            SELECT Y FROM Y IN automobile WHERE Y.color = purple
        """)
        assert rows == []
