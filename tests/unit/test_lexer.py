"""Lexer tests, with emphasis on the dot-disambiguation rule."""

import pytest

from repro.errors import PathLogSyntaxError
from repro.lang.lexer import tokenize
from repro.lang.tokens import TokenKind


def kinds(text: str) -> list[TokenKind]:
    return [token.kind for token in tokenize(text)]


class TestDots:
    def test_path_dot_before_identifier(self):
        assert kinds("a.b") == [TokenKind.NAME, TokenKind.DOT,
                                TokenKind.NAME, TokenKind.EOF]

    def test_terminator_dot_before_whitespace(self):
        assert kinds("a. ") == [TokenKind.NAME, TokenKind.TERMINATOR,
                                TokenKind.EOF]

    def test_terminator_dot_at_end_of_input(self):
        assert kinds("a.") == [TokenKind.NAME, TokenKind.TERMINATOR,
                               TokenKind.EOF]

    def test_double_dot_is_set_application(self):
        assert kinds("a..b") == [TokenKind.NAME, TokenKind.DOTDOT,
                                 TokenKind.NAME, TokenKind.EOF]

    def test_dot_before_paren_is_path(self):
        assert TokenKind.DOT in kinds("a.(b.c)")

    def test_statement_then_newline(self):
        tokens = kinds("a.b.\nc.")
        assert tokens == [
            TokenKind.NAME, TokenKind.DOT, TokenKind.NAME,
            TokenKind.TERMINATOR, TokenKind.NAME, TokenKind.TERMINATOR,
            TokenKind.EOF,
        ]


class TestWords:
    def test_lowercase_is_name(self):
        token = tokenize("mary")[0]
        assert token.kind is TokenKind.NAME
        assert token.value == "mary"

    def test_uppercase_is_variable(self):
        assert tokenize("X")[0].kind is TokenKind.VARIABLE
        assert tokenize("Boss")[0].kind is TokenKind.VARIABLE

    def test_underscore_is_variable(self):
        assert tokenize("_V1")[0].kind is TokenKind.VARIABLE

    def test_integer(self):
        token = tokenize("1994")[0]
        assert token.kind is TokenKind.INTEGER
        assert token.value == 1994


class TestStrings:
    def test_quoted_string_is_name(self):
        token = tokenize('"New York"')[0]
        assert token.kind is TokenKind.NAME
        assert token.value == "New York"

    def test_escapes(self):
        assert tokenize(r'"a\"b\\c\nd"')[0].value == 'a"b\\c\nd'

    def test_unterminated_string(self):
        with pytest.raises(PathLogSyntaxError, match="unterminated"):
            tokenize('"abc')

    def test_unknown_escape(self):
        with pytest.raises(PathLogSyntaxError, match="escape"):
            tokenize(r'"a\qb"')


class TestOperators:
    def test_arrows(self):
        assert kinds("a -> b")[1] is TokenKind.ARROW
        assert kinds("a ->> b")[1] is TokenKind.DARROW

    def test_implication_and_comparisons(self):
        assert kinds("a <- b")[1] is TokenKind.IMPLIED
        assert kinds("a <= b")[1] is TokenKind.LE
        assert kinds("a < b")[1] is TokenKind.LT
        assert kinds("a >= b")[1] is TokenKind.GE
        assert kinds("a != b")[1] is TokenKind.NEQ
        assert kinds("?- a")[0] is TokenKind.QUERY

    def test_bare_dash_is_error(self):
        with pytest.raises(PathLogSyntaxError):
            tokenize("a - b")

    def test_bare_bang_is_error(self):
        with pytest.raises(PathLogSyntaxError):
            tokenize("a ! b")

    def test_unknown_character(self):
        with pytest.raises(PathLogSyntaxError, match="unexpected"):
            tokenize("a & b")


class TestTrivia:
    def test_percent_comment(self):
        assert kinds("a % comment\nb") == [TokenKind.NAME, TokenKind.NAME,
                                           TokenKind.EOF]

    def test_slash_slash_comment(self):
        assert kinds("a // comment\nb") == [TokenKind.NAME, TokenKind.NAME,
                                            TokenKind.EOF]

    def test_positions_are_tracked(self):
        token = tokenize("a\n  b")[1]
        assert (token.line, token.column) == (2, 3)
