"""Unit tests of change-log-shipping replication.

Hub arithmetic (subscribe/ship/ack, lease pinning, epoch rotation) is
tested directly; the replica pull loop end-to-end against a real
primary on an ephemeral port; and the duplicate-skip / cursor-gap
logic by hand-feeding the replicator scripted primary responses.
Chaos (fault storms, restarts, convergence oracles) lives in
tests/integration/test_replication_chaos.py.
"""

import asyncio

import pytest

from repro.lang.parser import parse_program
from repro.oodb.database import Database
from repro.oodb.serialize import encode_fact
from repro.server import (
    Client,
    ReadOnly,
    ReplicaStale,
    ReplicationHub,
    RequestError,
    ResyncNeeded,
    ResyncRequired,
    Server,
    ServerConfig,
    parse_endpoint,
)

RULES = """
    X[desc ->> {Y}] <- X[kids ->> {Y}].
    X[desc ->> {Y}] <- X..desc[kids ->> {Y}].
"""

QUERY = "peter[desc ->> {X}]"


def seeded_db():
    db = Database()
    kids = db.obj("kids")
    db.assert_set_member(kids, db.obj("peter"), (), db.obj("tim"))
    db.assert_set_member(kids, db.obj("tim"), (), db.obj("tom"))
    return db


def grow(db, count, start=0):
    """Append ``count`` child facts; returns the batch as wire changes."""
    kids = db.obj("kids")
    for i in range(start, start + count):
        db.assert_set_member(kids, db.obj("peter"), (), db.obj(f"x{i}"))


class TestParseEndpoint:
    def test_host_port(self):
        assert parse_endpoint("10.0.0.7:7407") == ("10.0.0.7", 7407)

    def test_bare_colon_defaults_the_host(self):
        assert parse_endpoint(":7407") == ("127.0.0.1", 7407)

    @pytest.mark.parametrize("bad", ["7407", "host:", "host:nan", ""])
    def test_malformed_raises(self, bad):
        with pytest.raises(ValueError):
            parse_endpoint(bad)


class TestReplicationHub:
    def make(self):
        db = seeded_db()
        db.begin_changes()
        return db, ReplicationHub(db)

    def test_subscribe_at_head_then_ship_new_entries(self):
        db, hub = self.make()
        sub = hub.subscribe(None)
        assert sub.cursor == 0
        grow(db, 2)
        entries, head = hub.ship(sub, sub.cursor)
        assert head == 2
        assert len(entries) == 2
        # Entries are the live realizer-log shapes; they encode.
        for sign, fact in entries:
            assert sign == "+"
            encode_fact(fact)

    def test_subscription_lease_pins_against_trimming(self):
        db, hub = self.make()
        sub = hub.subscribe(0)
        grow(db, 3)
        db.catalog()
        db.trim_changes()
        # Unshipped entries survive: the lease is the low-water mark.
        assert db.change_log.offset == 0
        entries, _ = hub.ship(sub, 0)
        assert len(entries) == 3

    def test_ack_advances_the_lease_so_trimming_reclaims(self):
        db, hub = self.make()
        sub = hub.subscribe(0)
        grow(db, 3)
        hub.ack(sub, 2)
        db.catalog()
        db.trim_changes()
        assert db.change_log.offset == 2
        # The acked position still ships the suffix.
        entries, head = hub.ship(sub, 2)
        assert len(entries) == 1 and head == 3
        # Acks never move backwards.
        hub.ack(sub, 1)
        assert sub.cursor == 2

    def test_trimmed_past_cursor_answers_resync(self):
        db, hub = self.make()
        sub = hub.subscribe(0)
        grow(db, 3)
        hub.ack(sub, 3)
        db.catalog()
        db.trim_changes()
        with pytest.raises(ResyncNeeded):
            hub.ship(sub, 0)

    def test_subscribe_outside_the_servable_window_resyncs(self):
        db, hub = self.make()
        grow(db, 3)
        with pytest.raises(ResyncNeeded):
            hub.subscribe(99)           # past the head
        held = hub.subscribe(3)
        hub.ack(held, 3)
        db.catalog()
        db.trim_changes()
        with pytest.raises(ResyncNeeded):
            hub.subscribe(1)            # below the trim horizon
        assert hub.subscribe(3).cursor == 3

    def test_wrong_log_epoch_resyncs(self):
        db, hub = self.make()
        with pytest.raises(ResyncNeeded):
            hub.subscribe(0, log_id="not-this-epoch")
        sub = hub.subscribe(0, log_id=hub.log_id)
        assert hub.get(sub.id) is sub

    def test_log_replacement_rotates_the_epoch_and_drops_subs(self):
        db, hub = self.make()
        sub = hub.subscribe(0)
        old_epoch = hub.log_id
        db.change_log.disrupt("test")
        db.begin_changes()              # fresh log object
        with pytest.raises(ResyncNeeded):
            hub.ship(sub, 0)
        assert hub.log_id != old_epoch
        assert hub.get(sub.id) is None
        # Old leases died with the drop: the fresh log trims freely.
        grow(db, 1)
        db.catalog()
        db.trim_changes()
        assert db.change_log.offset == db.change_log.cursor()

    def test_drop_releases_the_lease(self):
        db, hub = self.make()
        sub = hub.subscribe(0)
        grow(db, 2)
        hub.drop(sub.id)
        db.catalog()
        db.trim_changes()
        assert db.change_log.offset == 2
        assert hub.get(sub.id) is None
        hub.drop(sub.id)                # idempotent

    def test_replicas_reports_cursor_and_lag(self):
        db, hub = self.make()
        sub = hub.subscribe(0)
        grow(db, 4)
        hub.ack(sub, 1)
        (report,) = hub.replicas()
        assert report["sub"] == sub.id
        assert report["cursor"] == 1
        assert report["lag"] == 3


async def start_pair(*, program=None, max_lag=None, poll_ms=25.0):
    db = seeded_db()
    primary = await Server(db, program=program,
                           config=ServerConfig(port=0)).start()
    host, port = primary.address
    replica = await Server(Database(), program=program,
                           config=ServerConfig(
                               port=0, replica_of=f"{host}:{port}",
                               max_lag=max_lag,
                               repl_poll_ms=poll_ms)).start()
    return primary, replica


async def wait_for_cursor(replica, cursor, timeout=5.0):
    loop = asyncio.get_running_loop()
    deadline = loop.time() + timeout
    while replica.replicator.applied < cursor:
        if loop.time() >= deadline:
            raise AssertionError(
                f"replica stuck at {replica.replicator.applied}, "
                f"wanted {cursor}")
        await asyncio.sleep(0.01)


async def answers_of(client, query=QUERY):
    response = await client.query(query)
    return frozenset(a["X"] for a in response["answers"]), response


class TestReplicaServer:
    def test_bootstrap_then_streamed_batches_reach_reads(self):
        program = parse_program(RULES)

        async def main():
            primary, replica = await start_pair(program=program)
            try:
                phost, pport = primary.address
                rhost, rport = replica.address
                async with Client(phost, pport) as pc, \
                        Client(rhost, rport) as rc:
                    base, _ = await answers_of(rc)
                    assert base == {"tim", "tom"}
                    await pc.write([["+set", "kids", "tom", [], "jerry"]])
                    await wait_for_cursor(replica, 1)
                    got, response = await answers_of(rc)
                    assert got == {"tim", "tom", "jerry"}
                    # The staleness proof rides every replica answer.
                    assert response["primary_cursor"] == 1
                    assert response["staleness"]["entries"] == 0
                    # in_sync arithmetic holds on the replica's log.
                    log = replica.database.change_log
                    assert log.in_sync(response["version"],
                                       response["cursor"])
            finally:
                await replica.shutdown()
                await primary.shutdown()

        asyncio.run(main())

    def test_replica_refuses_writes_and_repl_ops(self):
        async def main():
            primary, replica = await start_pair()
            try:
                rhost, rport = replica.address
                async with Client(rhost, rport) as rc:
                    with pytest.raises(ReadOnly) as exc_info:
                        await rc.request(
                            {"op": "write",
                             "changes": [["+isa", "a", "b"]]})
                    assert not exc_info.value.retryable
                    with pytest.raises(RequestError):
                        await rc.request({"op": "repl.snapshot"})
            finally:
                await replica.shutdown()
                await primary.shutdown()

        asyncio.run(main())

    def test_max_lag_sheds_reads_with_typed_stale(self):
        async def main():
            primary, replica = await start_pair(max_lag=0)
            try:
                rhost, rport = replica.address
                async with Client(rhost, rport) as rc:
                    # Caught up: reads pass.
                    await rc.request({"op": "query", "query": QUERY})
                    # Pretend the primary ran ahead: the next read
                    # sheds with the retryable staleness contract.
                    replica.replicator.head += 5
                    with pytest.raises(ReplicaStale) as exc_info:
                        await rc.request({"op": "query", "query": QUERY})
                    err = exc_info.value
                    assert err.retryable
                    assert err.retry_after_ms is not None
                    assert replica.stats.stale_sheds == 1
            finally:
                await replica.shutdown()
                await primary.shutdown()

        asyncio.run(main())

    def test_health_and_stats_expose_roles_and_cursors(self):
        async def main():
            primary, replica = await start_pair()
            try:
                phost, pport = primary.address
                rhost, rport = replica.address
                async with Client(phost, pport) as pc, \
                        Client(rhost, rport) as rc:
                    await pc.write([["+set", "kids", "peter", [], "c"]])
                    await wait_for_cursor(replica, 1)
                    phealth = await pc.health()
                    assert phealth["role"] == "primary"
                    assert phealth["connected_replicas"] == 1
                    pstats = await pc.stats()
                    repl = pstats["replication"]
                    assert repl["role"] == "primary"
                    (sub,) = repl["replicas"]
                    assert sub["cursor"] == 1
                    rhealth = await rc.health()
                    assert rhealth["role"] == "replica"
                    assert rhealth["applied_cursor"] == 1
                    rstats = await rc.stats()
                    assert rstats["replication"]["role"] == "replica"
                    assert rstats["replication"]["connected"]
                    assert rstats["repl_batches_applied"] >= 1
                    assert rstats["repl_entries_applied"] == 1
            finally:
                await replica.shutdown()
                await primary.shutdown()

        asyncio.run(main())

    def test_long_poll_ships_a_fresh_batch_promptly(self):
        async def main():
            db = seeded_db()
            async with Server(db, config=ServerConfig(port=0)) as primary:
                host, port = primary.address
                async with Client(host, port) as repl_link, \
                        Client(host, port) as writer:
                    sub = await repl_link.request(
                        {"op": "repl.subscribe", "cursor": 0})
                    loop = asyncio.get_running_loop()
                    started = loop.time()
                    batch_future = asyncio.ensure_future(
                        repl_link.request(
                            {"op": "repl.batch", "sub": sub["sub"],
                             "cursor": 0, "wait_ms": 30_000}))
                    await asyncio.sleep(0.05)
                    assert not batch_future.done()
                    await writer.write(
                        [["+set", "kids", "peter", [], "new"]])
                    batch = await asyncio.wait_for(batch_future, 5.0)
                    # Woken by the maintainer, not by the 30s timeout.
                    assert loop.time() - started < 10.0
                    assert batch["begin"] == 0
                    assert batch["cursor"] == 1
                    assert len(batch["entries"]) == 1

        asyncio.run(main())

    def test_dead_connection_drops_its_subscription_and_lease(self):
        async def main():
            db = seeded_db()
            async with Server(db, config=ServerConfig(port=0)) as primary:
                host, port = primary.address
                client = Client(host, port)
                await client.request({"op": "repl.subscribe", "cursor": 0})
                assert len(primary._hub.replicas()) == 1
                await client.close()
                for _ in range(200):
                    if not primary._hub.replicas():
                        break
                    await asyncio.sleep(0.01)
                assert primary._hub.replicas() == []
                # The lease died with the socket: fully trimmable.
                kids = db.obj("kids")
                db.assert_set_member(kids, db.obj("peter"), (),
                                     db.obj("zz"))
                db.catalog()
                primary.query.forget()
                db.trim_changes()
                log = db.change_log
                assert log.offset == log.cursor()

        asyncio.run(main())


class _ScriptedLink:
    """A fake primary connection: pops canned responses (or raises)."""

    def __init__(self, responses):
        self.responses = list(responses)
        self.requests = []

    async def request(self, payload):
        self.requests.append(payload)
        outcome = self.responses.pop(0)
        if isinstance(outcome, Exception):
            raise outcome
        return outcome

    async def close(self):
        pass


def wire_entries(db, mutate):
    """Run ``mutate`` on a scratch clone and return its encoded log."""
    log = db.begin_changes()
    before = log.cursor()
    mutate(db)
    return [[sign, encode_fact(fact)] for sign, fact in log.since(before)]


class TestReplicatorPullLogic:
    """Duplicate-skip and gap detection, with scripted responses."""

    def drive(self, begin, entries, applied):
        """One `_pull_once` against a scripted batch response."""
        async def main():
            primary, replica = await start_pair()
            try:
                # Park the real pull loop; drive the replicator by hand.
                replica._repl_task.cancel()
                try:
                    await replica._repl_task
                except asyncio.CancelledError:
                    pass
                replicator = replica.replicator
                await replicator._disconnect()
                replicator.applied = applied
                replicator._sub = "r1"
                replicator._client = _ScriptedLink([
                    {"ok": True, "begin": begin, "entries": entries,
                     "cursor": begin + len(entries), "version": 0}])
                await replicator._pull_once()
                return replicator.applied, replica.stats
            finally:
                await replica.shutdown()
                await primary.shutdown()

        return asyncio.run(main())

    def sample_entries(self, count):
        return wire_entries(seeded_db(), lambda db: grow(db, count))

    def test_duplicate_prefix_is_skipped_idempotently(self):
        entries = self.sample_entries(3)
        # Replica already applied 2 of the 3: only the last lands.
        applied, stats = self.drive(0, entries, applied=2)
        assert applied == 3
        assert stats.repl_entries_applied == 1

    def test_fully_duplicate_batch_applies_nothing(self):
        entries = self.sample_entries(2)
        applied, stats = self.drive(0, entries, applied=2)
        assert applied == 2
        assert stats.repl_batches_applied == 0

    def test_cursor_gap_demands_a_resync(self):
        async def main():
            primary, replica = await start_pair()
            try:
                replica._repl_task.cancel()
                try:
                    await replica._repl_task
                except asyncio.CancelledError:
                    pass
                replicator = replica.replicator
                await replicator._disconnect()
                replicator._sub = "r1"
                replicator._client = _ScriptedLink([
                    {"ok": True, "begin": 5, "entries": [],
                     "cursor": 5, "version": 0}])
                with pytest.raises(ResyncNeeded):
                    await replicator._pull_once()
            finally:
                await replica.shutdown()
                await primary.shutdown()

        asyncio.run(main())

    def test_resync_required_response_demands_a_resync(self):
        async def main():
            primary, replica = await start_pair()
            try:
                replica._repl_task.cancel()
                try:
                    await replica._repl_task
                except asyncio.CancelledError:
                    pass
                replicator = replica.replicator
                await replicator._disconnect()
                replicator._sub = "r1"
                replicator._client = _ScriptedLink(
                    [ResyncRequired("resync_required", "trimmed past")])
                with pytest.raises(ResyncNeeded):
                    await replicator._pull_once()
            finally:
                await replica.shutdown()
                await primary.shutdown()

        asyncio.run(main())
