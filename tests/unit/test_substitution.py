"""Substitution tests: structural replacement and simplicity preservation."""

from repro.core.ast import Name, Paren, Path, Var
from repro.core.substitution import EMPTY, Substitution
from repro.core.variables import FreshVariables, rename_apart, variables_of
from repro.lang.parser import parse_reference, parse_rule


def ref(text: str):
    return parse_reference(text, check=False)


class TestApply:
    def test_variable_replaced(self):
        subst = Substitution({Var("X"): Name("mary")})
        assert subst.apply(Var("X")) == Name("mary")
        assert subst.apply(Var("Y")) == Var("Y")

    def test_unchanged_references_are_shared(self):
        subst = Substitution({Var("X"): Name("mary")})
        ground = ref("a.b[c -> d]")
        assert subst.apply(ground) is ground

    def test_deep_replacement(self):
        subst = Substitution({Var("X"): Name("p1")})
        result = subst.apply(ref("X : employee..vehicles[owner -> X]"))
        assert result == ref("p1 : employee..vehicles[owner -> p1]")

    def test_method_variable_replaced_by_name(self):
        subst = Substitution({Var("M"): Name("kids")})
        assert subst.apply(ref("x.M")) == ref("x.kids")

    def test_method_variable_replaced_by_path_gets_parens(self):
        # Substituting a path into a method position must keep the
        # reference well-formed: a Paren is inserted.
        subst = Substitution({Var("M"): Path(Name("kids"), Name("tc"), ())})
        result = subst.apply(ref("x..M"))
        assert result == ref("x..(kids.tc)")

    def test_filter_method_and_class_substitution(self):
        subst = Substitution({Var("M"): Name("age"), Var("C"): Name("emp")})
        assert subst.apply(ref("x[M -> 30] : C")) == ref("x[age -> 30] : emp")

    def test_apply_rule(self):
        subst = Substitution({Var("X"): Name("p1")})
        rule = parse_rule("X[a -> 1] <- X : employee, X.age >= 30.")
        applied = subst.apply_rule(rule)
        assert applied == parse_rule("p1[a -> 1] <- p1 : employee, p1.age >= 30.")

    def test_extended_is_persistent(self):
        base = EMPTY.extended(Var("X"), Name("a"))
        assert Var("X") not in EMPTY
        assert base[Var("X")] == Name("a")


class TestFreshAndRename:
    def test_fresh_avoids_collisions(self):
        fresh = FreshVariables(avoid=[Var("_V1"), Var("_V3")])
        produced = [fresh.fresh() for _ in range(3)]
        assert Var("_V1") not in produced
        assert len(set(produced)) == 3

    def test_rename_apart_only_touches_clashes(self):
        rule = parse_rule("X[a -> Y] <- X[b -> Y].")
        renamed = rename_apart(rule, avoid=[Var("Y")])
        head_vars = {v.name for v in variables_of(renamed)}
        assert "X" in head_vars
        assert "Y" not in head_vars

    def test_rename_apart_no_clash_is_identity(self):
        rule = parse_rule("X[a -> 1] <- X : c.")
        assert rename_apart(rule, avoid=[Var("Z")]) is rule
