"""Flattening tests: atoms produced, aux variables, strict mode."""

import pytest

from repro.core.ast import Name, Var
from repro.core.variables import FreshVariables
from repro.flogic.atoms import (
    ComparisonAtom,
    EnumSupersetAtom,
    IsaAtom,
    ScalarAtom,
    SetMemberAtom,
    SupersetAtom,
)
from repro.flogic.flatten import (
    FlattenUnsupported,
    flatten_conjunction,
    flatten_literal,
    flatten_reference,
    flatten_strict,
)
from repro.lang.parser import parse_literal, parse_query, parse_reference


def flat(text: str):
    return flatten_reference(parse_reference(text, check=False))


class TestBasicForms:
    def test_name_and_variable_produce_no_atoms(self):
        assert flat("mary").atoms == ()
        assert flat("X").term == Var("X")

    def test_scalar_path(self):
        result = flat("mary.boss")
        assert len(result.atoms) == 1
        atom = result.atoms[0]
        assert isinstance(atom, ScalarAtom)
        assert atom.method == Name("boss")
        assert atom.subject == Name("mary")
        assert atom.result == result.term

    def test_set_path(self):
        result = flat("p1..assistants")
        assert isinstance(result.atoms[0], SetMemberAtom)

    def test_deep_path_chains_aux_vars(self):
        result = flat("a.b.c.d")
        assert len(result.atoms) == 3
        # each atom's result feeds the next atom's subject
        for first, second in zip(result.atoms, result.atoms[1:]):
            assert first.result == second.subject

    def test_isa(self):
        result = flat("x : c")
        assert result.atoms == (IsaAtom(Name("x"), Name("c")),)
        assert result.term == Name("x")

    def test_scalar_filter(self):
        result = flat("mary[age -> 30]")
        assert result.atoms == (ScalarAtom(Name("age"), Name("mary"), (),
                                           Name(30)),)

    def test_flagship_query_shape(self):
        result = flat(
            "X : employee..vehicles : automobile.color[Z]"
        )
        kinds = [type(a).__name__ for a in result.atoms]
        assert kinds == ["IsaAtom", "SetMemberAtom", "IsaAtom",
                         "ScalarAtom", "ScalarAtom"]

    def test_selector_flattens_to_self(self):
        result = flat("x.color[Z]")
        last = result.atoms[-1]
        assert isinstance(last, ScalarAtom)
        assert last.method == Name("self")
        assert last.result == Var("Z")

    def test_path_args_flattened(self):
        result = flat("p1.paidFor@(p1..vehicles)")
        assert isinstance(result.atoms[0], SetMemberAtom)
        assert isinstance(result.atoms[1], ScalarAtom)
        assert result.atoms[1].args == (result.atoms[0].member,)


class TestSupersetForms:
    def test_set_filter_becomes_superset_atom(self):
        result = flat("p2[friends ->> p1..assistants]")
        atom = result.atoms[0]
        assert isinstance(atom, SupersetAtom)
        assert atom.source == parse_reference("p1..assistants")

    def test_enum_with_simple_elements_desugars(self):
        result = flat("p2[friends ->> {Y, p3}]")
        assert all(isinstance(a, SetMemberAtom) for a in result.atoms)
        assert {a.member for a in result.atoms} == {Var("Y"), Name("p3")}

    def test_enum_with_complex_elements_keeps_superset(self):
        result = flat("p2[friends ->> {Y, john.spouse}]")
        kinds = {type(a).__name__ for a in result.atoms}
        assert kinds == {"SetMemberAtom", "EnumSupersetAtom"}
        enum = [a for a in result.atoms
                if isinstance(a, EnumSupersetAtom)][0]
        assert enum.elements == (parse_reference("john.spouse"),)

    def test_source_variables(self):
        result = flat("p2[friends ->> X..assistants]")
        atom = result.atoms[0]
        assert atom.source_variables() == (Var("X"),)


class TestStrictMode:
    def test_rejects_superset_filters(self):
        with pytest.raises(FlattenUnsupported, match="superset"):
            flatten_strict(parse_reference("p2[friends ->> p1..assistants]"))

    def test_rejects_complex_enum_elements(self):
        with pytest.raises(FlattenUnsupported, match="drop-if-undefined"):
            flatten_strict(parse_reference("p2[friends ->> {john.spouse}]"))

    def test_accepts_plain_queries(self):
        result = flatten_strict(parse_reference(
            "X : employee..vehicles : automobile.color[Z]"))
        assert len(result.atoms) == 5

    def test_accepts_simple_enum(self):
        result = flatten_strict(parse_reference("p2[friends ->> {Y}]"))
        assert isinstance(result.atoms[0], SetMemberAtom)


class TestLiteralsAndConjunctions:
    def test_comparison_literal(self):
        fresh = FreshVariables()
        atoms = flatten_literal(parse_literal("X.age >= 30"), fresh)
        assert isinstance(atoms[0], ScalarAtom)
        assert isinstance(atoms[1], ComparisonAtom)
        assert atoms[1].op == ">="

    def test_conjunction_shares_fresh_pool(self):
        literals = parse_query("X.a[V], X.b[W]")
        atoms = flatten_conjunction(literals)
        names = [a.result.name for a in atoms
                 if isinstance(a, ScalarAtom) and isinstance(a.result, Var)]
        assert len(names) == len(set(names))

    def test_aux_vars_avoid_user_vars(self):
        result = flatten_reference(parse_reference("_V1.a.b"))
        aux = {t.name for atom in result.atoms for t in atom.variables()}
        assert "_V1" in aux  # the user's own variable is kept
        assert len(aux) == 3  # _V1 plus two distinct fresh ones
