"""Crash-harness tests: kill-at-every-point drives and verifies."""

from repro.oodb.checkpoint import DurableStore, recover
from repro.oodb.database import Database
from repro.oodb.oid import NamedOid
from repro.testing import DURABILITY_SITES, kill_at_every_point, torn_write
from repro.testing.faults import SITES


def n(value):
    return NamedOid(value)


def test_durability_sites_are_registered():
    assert set(DURABILITY_SITES) <= SITES


class TestKillAtEveryPoint:
    def make_dirs(self, tmp_path):
        counter = iter(range(10_000))

        def make_dir():
            path = tmp_path / f"run-{next(counter)}"
            path.mkdir()
            return path
        return make_dir

    def test_covers_every_site_the_workload_crosses(self, tmp_path):
        def workload(data_dir):
            store = DurableStore.open(data_dir)
            store.database.assert_isa(n("a"), n("b"))
            store.commit()
            store.database.assert_isa(n("c"), n("d"))
            store.commit()
            store.checkpoint()
            store.close()

        seen = []

        def verify(data_dir, site, hit):
            seen.append((site, hit))
            result = recover(data_dir)
            # Committed-prefix invariant: the later fact implies the
            # earlier one.
            if result.database.hierarchy.isa(n("c"), n("d")):
                assert result.database.hierarchy.isa(n("a"), n("b"))

        crashed = kill_at_every_point(workload, verify,
                                      make_dir=self.make_dirs(tmp_path))
        crashed_sites = {site for site, _ in crashed}
        # Every write-path site the workload crosses must have crashed
        # at least once.
        assert {"wal.append", "wal.commit", "wal.fsync", "wal.rotate",
                "checkpoint.write",
                "checkpoint.rename"} <= crashed_sites
        # The control run (site="") is verified too.
        assert ("", 0) in seen

    def test_recovery_crash_is_exercised_on_reopen(self, tmp_path):
        def workload(data_dir):
            store = DurableStore.open(data_dir)
            store.database.assert_isa(n("a"), n("b"))
            store.commit()
            store.close()
            # Reopen: recovery replays the committed batch, crossing
            # recover.replay, then checkpoints again.
            store = DurableStore.open(data_dir)
            store.close()

        def verify(data_dir, site, hit):
            # Whatever point the workload died at, the directory must
            # recover without raising and reopen cleanly.
            recover(data_dir)
            store = DurableStore.open(data_dir)
            store.close()

        crashed = kill_at_every_point(workload, verify,
                                      make_dir=self.make_dirs(tmp_path))
        assert any(site == "recover.replay" for site, _ in crashed)


class TestTornWrite:
    def test_truncates_newest_segment(self, tmp_path):
        store = DurableStore.open(tmp_path)
        store.database.assert_isa(n("a"), n("b"))
        store.commit()
        store.checkpoint()
        store.database.assert_isa(n("x"), n("y"))
        store.commit()
        store.close()
        from repro.oodb.wal import segment_files
        path = segment_files(tmp_path)[-1][1]
        before = path.stat().st_size
        assert torn_write(tmp_path, drop=3) == path
        assert path.stat().st_size == before - 3
        result = recover(tmp_path)
        assert result.truncated_tail > 0
        # The checkpointed fact survives; only the torn later batch is
        # rolled off.
        assert result.database.hierarchy.isa(n("a"), n("b"))
        assert not result.database.hierarchy.isa(n("x"), n("y"))

    def test_flip_corrupts_in_place(self, tmp_path):
        store = DurableStore.open(tmp_path)
        store.database.assert_isa(n("a"), n("b"))
        store.commit()
        store.close()
        from repro.oodb.wal import segment_files
        path = segment_files(tmp_path)[-1][1]
        before = path.stat().st_size
        assert torn_write(tmp_path, flip=True) == path
        assert path.stat().st_size == before
        result = recover(tmp_path)
        assert result.truncated_tail > 0

    def test_no_segments_returns_none(self, tmp_path):
        assert torn_write(tmp_path) is None
