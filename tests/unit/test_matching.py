"""Atom matching tests: index selection, builtins, policies, deltas."""

import pytest

from repro.core.ast import Name, Var
from repro.engine.matching import (
    UNRESTRICTED,
    MatchPolicy,
    match_atom,
    match_atom_delta,
    resolve,
    unify,
)
from repro.errors import EvaluationError
from repro.flogic.atoms import (
    ComparisonAtom,
    EnumSupersetAtom,
    IsaAtom,
    ScalarAtom,
    SetMemberAtom,
    SupersetAtom,
)
from repro.lang.parser import parse_reference
from repro.oodb.database import Database
from repro.oodb.oid import NamedOid, VirtualOid


def n(value):
    return NamedOid(value)


def rows(db, atom, binding=None, policy=UNRESTRICTED):
    return list(match_atom(db, atom, dict(binding or {}), policy))


@pytest.fixture
def db():
    db = Database()
    db.subclass("automobile", "vehicle")
    db.add_object("car1", classes=["automobile"], scalars={"color": "red"})
    db.add_object("car2", classes=["automobile"], scalars={"color": "blue"})
    db.add_object("p1", sets={"vehicles": ["car1", "car2"]})
    return db


class TestResolveUnify:
    def test_resolve(self, db):
        assert resolve(Name("p1"), db, {}) == n("p1")
        assert resolve(Var("X"), db, {}) is None
        assert resolve(Var("X"), db, {Var("X"): n("p1")}) == n("p1")

    def test_unify_binds_and_checks(self, db):
        bound = unify(Var("X"), n("a"), db, {})
        assert bound == {Var("X"): n("a")}
        assert unify(Var("X"), n("b"), db, bound) is None
        assert unify(Name("a"), n("a"), db, {}) == {}


class TestScalarMatching:
    def test_fully_bound_lookup(self, db):
        atom = ScalarAtom(Name("color"), Name("car1"), (), Var("C"))
        assert rows(db, atom) == [{Var("C"): n("red")}]

    def test_bound_result_inverse_lookup(self, db):
        atom = ScalarAtom(Name("color"), Var("V"), (), Name("red"))
        assert rows(db, atom) == [{Var("V"): n("car1")}]

    def test_unbound_method_enumerates_stored_methods(self, db):
        atom = ScalarAtom(Var("M"), Name("car1"), (), Var("R"))
        found = {(b[Var("M")], b[Var("R")]) for b in rows(db, atom)}
        assert found == {(n("color"), n("red"))}

    def test_self_builtin(self, db):
        atom = ScalarAtom(Name("self"), Name("car1"), (), Var("X"))
        assert rows(db, atom) == [{Var("X"): n("car1")}]
        inverse = ScalarAtom(Name("self"), Var("X"), (), Name("car1"))
        assert rows(db, inverse) == [{Var("X"): n("car1")}]

    def test_self_never_matches_unbound_method(self, db):
        # Documented restriction: M does not range over builtins.
        atom = ScalarAtom(Var("M"), Name("car1"), (), Name("car1"))
        assert rows(db, atom) == []

    def test_arity_must_match(self, db):
        john = db.lookup_name("john")
        db.assert_scalar(n("salary"), john, (n(1994),), n(1000))
        atom = ScalarAtom(Name("salary"), Name("john"), (), Var("S"))
        assert rows(db, atom) == []
        atom2 = ScalarAtom(Name("salary"), Name("john"), (Var("Y"),),
                           Var("S"))
        assert rows(db, atom2) == [{Var("Y"): n(1994), Var("S"): n(1000)}]


class TestSetMatching:
    def test_members_enumerated(self, db):
        atom = SetMemberAtom(Name("vehicles"), Name("p1"), (), Var("V"))
        found = {b[Var("V")] for b in rows(db, atom)}
        assert found == {n("car1"), n("car2")}

    def test_membership_check(self, db):
        atom = SetMemberAtom(Name("vehicles"), Name("p1"), (), Name("car1"))
        assert rows(db, atom) == [{}]

    def test_inverse_lookup(self, db):
        atom = SetMemberAtom(Name("vehicles"), Var("O"), (), Name("car2"))
        assert rows(db, atom) == [{Var("O"): n("p1")}]


class TestIsaMatching:
    def test_both_bound(self, db):
        assert rows(db, IsaAtom(Name("car1"), Name("vehicle"))) == [{}]
        assert rows(db, IsaAtom(Name("p1"), Name("vehicle"))) == []

    def test_classes_of(self, db):
        found = {b[Var("C")] for b in
                 rows(db, IsaAtom(Name("car1"), Var("C")))}
        assert found == {n("automobile"), n("vehicle")}

    def test_members(self, db):
        # The paper folds membership and subclassing into ONE partial
        # order, so the subclass `automobile` is itself related to
        # `vehicle`, exactly like the instances are.
        found = {b[Var("O")] for b in
                 rows(db, IsaAtom(Var("O"), Name("vehicle")))}
        assert found == {n("car1"), n("car2"), n("automobile")}

    def test_fully_unbound(self, db):
        pairs = {(b[Var("O")], b[Var("C")]) for b in
                 rows(db, IsaAtom(Var("O"), Var("C")))}
        assert (n("car1"), n("vehicle")) in pairs


class TestSupersetMatching:
    def test_bound_subject_check(self, db):
        db.add_object("p2", sets={"friends": ["car1", "car2"]})
        atom = SupersetAtom(Name("friends"), Name("p2"), (),
                            parse_reference("p1..vehicles"))
        assert rows(db, atom) == [{}]

    def test_pivot_search_with_unbound_subject(self, db):
        db.add_object("p2", sets={"friends": ["car1", "car2"]})
        db.add_object("p3", sets={"friends": ["car1"]})
        atom = SupersetAtom(Name("friends"), Var("W"), (),
                            parse_reference("p1..vehicles"))
        found = {b[Var("W")] for b in rows(db, atom)}
        assert found == {n("p2")}

    def test_vacuous_superset_unbound_subject_enumerates_universe(self, db):
        atom = SupersetAtom(Name("friends"), Var("W"), (),
                            parse_reference("nobody..assistants"))
        found = {b[Var("W")] for b in rows(db, atom)}
        assert found == db.universe()

    def test_unbound_source_variable_enumerated(self, db):
        db.add_object("p2", sets={"friends": ["car1", "car2"]})
        atom = SupersetAtom(Name("friends"), Name("p2"), (),
                            parse_reference("X..vehicles"))
        assert any(b.get(Var("X")) == n("p1") for b in rows(db, atom))

    def test_enum_superset(self, db):
        db.add_object("p2", sets={"friends": ["car1"]})
        atom = EnumSupersetAtom(Name("friends"), Name("p2"), (),
                                (parse_reference("p1.color"),))
        # p1.color does not denote -> S empty -> vacuous.
        assert rows(db, atom) == [{}]
        atom2 = EnumSupersetAtom(Name("friends"), Name("p2"), (),
                                 (parse_reference("car1.self"),))
        assert rows(db, atom2) == [{}]


class TestMethodDepthPolicy:
    def test_virtual_methods_filtered(self, db):
        tc_kids = VirtualOid(n("tc"), n("kids"))
        deep = VirtualOid(n("tc"), tc_kids)
        subject = db.lookup_name("x")
        db.assert_set_member(tc_kids, subject, (), n("y"))
        db.assert_set_member(deep, subject, (), n("z"))
        atom = SetMemberAtom(Var("M"), Name("x"), (), Var("R"))
        shallow = MatchPolicy(max_method_depth=1)
        found = {b[Var("M")] for b in rows(db, atom, policy=shallow)}
        assert found == {tc_kids}
        unlimited = {b[Var("M")] for b in rows(db, atom)}
        assert unlimited == {tc_kids, deep}

    def test_policy_applies_to_bound_methods_too(self, db):
        # Uniformity: a bound deep method is rejected the same way an
        # enumerated one would be, so answers are order-independent.
        deep = VirtualOid(n("tc"), VirtualOid(n("tc"), n("kids")))
        subject = db.lookup_name("x")
        db.assert_set_member(deep, subject, (), n("y"))
        atom = SetMemberAtom(Var("M"), Name("x"), (), Var("R"))
        shallow = MatchPolicy(max_method_depth=1)
        assert rows(db, atom, {Var("M"): deep}, shallow) == []


class TestComparisonsAndDeltas:
    def test_comparison_requires_bound(self, db):
        atom = ComparisonAtom("<", Var("X"), Name(3))
        with pytest.raises(EvaluationError, match="bound"):
            rows(db, atom)

    def test_comparison_filters(self, db):
        atom = ComparisonAtom("<", Var("X"), Name(3))
        assert rows(db, atom, {Var("X"): n(2)}) == [{Var("X"): n(2)}]
        assert rows(db, atom, {Var("X"): n(5)}) == []

    def test_delta_matching(self, db):
        delta = [("scalar", n("color"), n("car9"), (), n("red")),
                 ("set", n("vehicles"), n("p9"), (), n("car9"))]
        atom = ScalarAtom(Name("color"), Var("V"), (), Var("C"))
        found = list(match_atom_delta(db, atom, {}, delta))
        assert found == [{Var("V"): n("car9"), Var("C"): n("red")}]
        set_atom = SetMemberAtom(Name("vehicles"), Var("O"), (), Var("V"))
        assert list(match_atom_delta(db, set_atom, {}, delta)) == [
            {Var("O"): n("p9"), Var("V"): n("car9")},
        ]

    def test_delta_ignores_isa_and_other_kinds(self, db):
        delta = [("isa", n("a"), n("b"))]
        atom = IsaAtom(Var("O"), Var("C"))
        assert list(match_atom_delta(db, atom, {}, delta)) == []
