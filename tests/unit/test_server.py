"""Unit tests of the concurrent query server and its client.

Each test spins a real server on an ephemeral port inside one
``asyncio.run`` (the suite has no async test runner, so sync test
functions own the loop).  Integration-scale behaviour -- reader/writer
races, chaos -- lives in tests/integration.
"""

import asyncio
import json
import random

import pytest

from repro.oodb.database import Database
from repro.lang.parser import parse_program
from repro.server import (
    AdmissionController,
    AdmissionShed,
    Client,
    ConnectionLost,
    Overloaded,
    ReadWriteGate,
    RequestError,
    RequestTimeout,
    RetryPolicy,
    Server,
    ServerConfig,
    ServerError,
)
from repro.server import protocol
from repro.testing import InjectedFault, inject


def seeded_db(count=3):
    db = Database()
    for i in range(count):
        db.add_object(f"p{i}", classes=["employee"],
                      scalars={"age": 30 + i})
    return db


def run_with_server(coro_fn, db=None, program=None, **config):
    """asyncio.run a coroutine taking a started Server."""
    async def main():
        cfg = ServerConfig(port=0, **config)
        async with Server(db if db is not None else seeded_db(),
                          program=program, config=cfg) as server:
            return await coro_fn(server)
    return asyncio.run(main())


class TestProtocol:
    def test_frame_roundtrip(self):
        async def main():
            payload = {"op": "query", "query": "X : c", "id": 7}
            reader = asyncio.StreamReader()
            reader.feed_data(protocol.encode_frame(payload))
            reader.feed_eof()
            assert await protocol.read_frame(reader) == payload
            assert await protocol.read_frame(reader) is None
        asyncio.run(main())

    def test_oversized_frame_rejected_before_buffering(self):
        async def main():
            reader = asyncio.StreamReader()
            reader.feed_data((2 ** 31).to_bytes(4, "big"))
            with pytest.raises(protocol.FrameTooLarge):
                await protocol.read_frame(reader)
        asyncio.run(main())

    def test_error_codes_carry_retryability(self):
        shed = protocol.error(protocol.OVERLOADED, "full",
                              retry_after_ms=12.5)
        assert shed["error"]["retryable"]
        assert shed["error"]["retry_after_ms"] == 12.5
        bad = protocol.error(protocol.QUERY_ERROR, "nope")
        assert not bad["error"]["retryable"]

    def test_responses_echo_the_request_id(self):
        request = {"op": "health", "id": "abc"}
        assert protocol.ok(request)["id"] == "abc"
        assert protocol.error(protocol.INTERNAL, "x",
                              request=request)["id"] == "abc"


class TestAdmission:
    def test_sheds_beyond_the_queue_bound(self):
        async def main():
            controller = AdmissionController(1, 1)
            first = await controller.admit()     # runs
            waiting = asyncio.create_task(controller.admit())  # queues
            await asyncio.sleep(0)
            assert controller.waiting == 1
            with pytest.raises(AdmissionShed) as info:
                await controller.admit()         # queue full: shed
            assert info.value.retry_after_ms > 0
            assert controller.shed == 1
            async with first:
                pass
            async with await waiting:
                pass
            assert controller.inflight == 0
        asyncio.run(main())

    def test_retry_hint_grows_with_backlog(self):
        controller = AdmissionController(2, 10)
        idle = controller.retry_after_ms()
        controller.inflight = 2
        controller.waiting = 8
        assert controller.retry_after_ms() > idle


class TestReadWriteGate:
    def test_readers_share_writer_excludes(self):
        async def main():
            gate = ReadWriteGate()
            order = []

            async def reader(name, hold):
                async with gate.read():
                    order.append(f"{name}+")
                    await hold.wait()
                    order.append(f"{name}-")

            hold = asyncio.Event()
            r1 = asyncio.create_task(reader("r1", hold))
            r2 = asyncio.create_task(reader("r2", hold))
            await asyncio.sleep(0)
            assert gate.readers == 2     # both inside at once

            async def writer():
                async with gate.write():
                    order.append("w")

            w = asyncio.create_task(writer())
            await asyncio.sleep(0)

            async def late_reader():
                async with gate.read():
                    order.append("late+")

            late = asyncio.create_task(late_reader())
            await asyncio.sleep(0)
            hold.set()
            await asyncio.gather(r1, r2, w, late)
            # Writer preference: the late reader queued behind the
            # waiting writer even though readers were inside.
            assert order.index("w") < order.index("late+")
        asyncio.run(main())


class TestServerBasics:
    def test_query_write_roundtrip(self):
        async def scenario(server):
            host, port = server.address
            async with Client(host, port) as client:
                first = await client.query("X : employee", ["X"])
                assert [a["X"] for a in first["answers"]] == \
                    ["p0", "p1", "p2"]
                applied = await client.write(
                    [["+isa", "p9", "employee"],
                     ["+scalar", "age", "p9", [], 99]])
                assert applied["applied"] == 2
                again = await client.query(
                    "X : employee, X.age >= 99", ["X"])
                assert [a["X"] for a in again["answers"]] == ["p9"]
        run_with_server(scenario)

    def test_answers_reflect_a_single_snapshot_cursor(self):
        async def scenario(server):
            host, port = server.address
            async with Client(host, port) as client:
                before = await client.query("X : employee", ["X"])
                await client.write([["+isa", "p9", "employee"]])
                after = await client.query("X : employee", ["X"])
                assert after["cursor"] == before["cursor"] + 1
                assert after["version"] > before["version"]
        run_with_server(scenario)

    def test_program_queries_share_demand_memos(self):
        program = parse_program("""
            X[desc ->> {Y}] <- X[kids ->> {Y}].
            X[desc ->> {Y}] <- X..desc[kids ->> {Y}].
        """)
        db = Database()
        kids = db.obj("kids")
        db.assert_set_member(kids, db.obj("peter"), (), db.obj("tim"))
        db.assert_set_member(kids, db.obj("tim"), (), db.obj("sally"))

        async def scenario(server):
            host, port = server.address
            async with Client(host, port) as client:
                res = await client.query("peter[desc ->> {X}]", ["X"])
                assert {a["X"] for a in res["answers"]} == \
                    {"tim", "sally"}
                await client.write(
                    [["+set", "kids", "sally", [], "zoe"]])
                res = await client.query("peter[desc ->> {X}]", ["X"])
                assert {a["X"] for a in res["answers"]} == \
                    {"tim", "sally", "zoe"}
        run_with_server(scenario, db=db, program=program)

    def test_write_conflicts_roll_back_whole_batch(self):
        async def scenario(server):
            host, port = server.address
            async with Client(host, port) as client:
                version = (await client.stats())["version"]
                with pytest.raises(RequestError):
                    # p0 already has age 30: scalar conflict after the
                    # first change applied -- both must vanish.
                    await client.write(
                        [["+isa", "px", "employee"],
                         ["+scalar", "age", "p0", [], 77]])
                answers = (await client.query("X : employee",
                                              ["X"]))["answers"]
                assert [a["X"] for a in answers] == ["p0", "p1", "p2"]
                assert (await client.stats())["rollbacks"] == 1
                # Rollback re-asserts through the logged API: the
                # version advances, the facts do not.
                assert (await client.stats())["version"] >= version
        run_with_server(scenario)

    def test_malformed_changes_rejected_before_mutation(self):
        async def scenario(server):
            host, port = server.address
            async with Client(host, port) as client:
                for bad in ([["~scalar", "a", "b", [], 1]],
                            [["+scalar", "a", "b", "notalist", 1]],
                            [["+isa", ["nested"], "c"]],
                            ["notalist"]):
                    with pytest.raises(RequestError):
                        await client.write(bad)
                assert (await client.stats())["rollbacks"] == 0
        run_with_server(scenario)

    def test_bad_requests_answered_not_fatal(self):
        async def scenario(server):
            host, port = server.address
            async with Client(host, port) as client:
                with pytest.raises(RequestError):
                    await client.request({"op": "dance"})
                with pytest.raises(RequestError):
                    await client.request({"op": "query"})
                with pytest.raises(RequestError):
                    await client.query("X : ")  # syntax error
                assert (await client.health())["status"] == "ok"
        run_with_server(scenario)

    def test_query_limit_caps_answers(self):
        async def scenario(server):
            host, port = server.address
            async with Client(host, port) as client:
                res = await client.query("X : employee", ["X"], limit=2)
                assert len(res["answers"]) == 2
        run_with_server(scenario)

    def test_health_and_stats_surface_counters(self):
        async def scenario(server):
            host, port = server.address
            async with Client(host, port) as client:
                await client.query("X : employee", ["X"])
                health = await client.health()
                assert health["status"] == "ok"
                assert health["snapshot_lag"] == 0
                stats = await client.stats()
                assert stats["queries"] == 1
                assert stats["served"] >= 1
                assert stats["shed"] == 0
                assert stats["log_entries"] == 0
        run_with_server(scenario)


class TestBudgetsAndDeadlines:
    def test_request_timeout_maps_to_budget(self):
        async def scenario(server):
            host, port = server.address
            async with Client(host, port,
                              retry=RetryPolicy(attempts=1)) as client:
                with pytest.raises(RequestTimeout):
                    await client.query("X : employee, Y : employee, "
                                       "Z : employee", timeout_ms=0)
        run_with_server(scenario)

    def test_max_timeout_ms_caps_requests(self):
        async def scenario(server):
            host, port = server.address
            async with Client(host, port,
                              retry=RetryPolicy(attempts=1)) as client:
                with pytest.raises(RequestTimeout):
                    await client.query("X : employee",
                                       timeout_ms=60_000)
                assert (await client.stats())["budget_stops"] == 1
        run_with_server(scenario, max_timeout_ms=0.0)

    def test_disconnect_cancels_inflight_budget(self):
        async def scenario(server):
            host, port = server.address
            release = asyncio.Event()
            seen = {}

            real = server._run_query

            def gated(text, variables, limit, budget):
                seen["budget"] = budget
                # Block the worker until the main task saw the drop.
                asyncio.run_coroutine_threadsafe(
                    release.wait(), loop).result(timeout=5)
                return real(text, variables, limit, budget)

            loop = asyncio.get_running_loop()
            server._run_query = gated
            reader, writer = await asyncio.open_connection(host, port)
            writer.write(protocol.encode_frame(
                {"op": "query", "query": "X : employee"}))
            await writer.drain()
            while "budget" not in seen:
                await asyncio.sleep(0.005)
            writer.close()        # client vanishes mid-request
            while not seen["budget"].cancelled:
                await asyncio.sleep(0.005)
            release.set()
            while server.stats.disconnect_cancels == 0:
                await asyncio.sleep(0.005)
            assert seen["budget"].cancelled
        run_with_server(scenario)


class TestOverloadAndDrain:
    def test_sheds_with_retry_after_when_queue_full(self):
        async def scenario(server):
            host, port = server.address
            release = asyncio.Event()
            loop = asyncio.get_running_loop()

            real = server._run_query

            def slow(text, variables, limit, budget):
                asyncio.run_coroutine_threadsafe(
                    release.wait(), loop).result(timeout=5)
                return real(text, variables, limit, budget)

            server._run_query = slow

            async def one():
                async with Client(host, port,
                                  retry=RetryPolicy(attempts=1)) as c:
                    return await c.query("X : employee", ["X"])

            # 1 running + 1 queued fill the server; the rest shed.
            tasks = [asyncio.create_task(one()) for _ in range(6)]
            while server.stats.shed + server._admission.inflight \
                    + server._admission.waiting < 6:
                await asyncio.sleep(0.005)
            release.set()
            results = await asyncio.gather(*tasks,
                                           return_exceptions=True)
            shed = [r for r in results if isinstance(r, Overloaded)]
            served = [r for r in results if isinstance(r, dict)]
            assert len(shed) == 4 and len(served) == 2
            assert all(s.retry_after_ms > 0 for s in shed)
            assert (await (await Client(host, port).connect()).stats()
                    )["shed"] == 4
        run_with_server(scenario, max_inflight=1, max_queue=1)

    def test_client_retries_through_overload(self):
        async def scenario(server):
            host, port = server.address
            release = asyncio.Event()
            loop = asyncio.get_running_loop()
            real = server._run_query

            def slow(text, variables, limit, budget):
                asyncio.run_coroutine_threadsafe(
                    release.wait(), loop).result(timeout=5)
                return real(text, variables, limit, budget)

            server._run_query = slow
            blocker_task = asyncio.create_task((
                Client(host, port).connect()))
            blocker = await blocker_task
            first = asyncio.create_task(
                blocker.query("X : employee", ["X"]))
            while server._admission.inflight == 0:
                await asyncio.sleep(0.005)
            # Queue is 0-deep: the next request sheds, then succeeds
            # on retry once the blocker finishes.
            retrier = Client(host, port, retry=RetryPolicy(
                attempts=6, base_ms=5.0, rng=random.Random(7)))
            await retrier.connect()
            second = asyncio.create_task(
                retrier.query("X : employee", ["X"]))
            while server.stats.shed == 0:
                await asyncio.sleep(0.005)
            release.set()
            res = await second
            assert [a["X"] for a in res["answers"]] == \
                ["p0", "p1", "p2"]
            assert retrier.retries > 0
            await first
            await blocker.close()
            await retrier.close()
        run_with_server(scenario, max_inflight=1, max_queue=0)

    def test_graceful_drain_answers_inflight_rejects_new(self):
        async def scenario(server):
            host, port = server.address
            client = await Client(host, port).connect()
            res = await client.shutdown()
            assert res["draining"]
            await server.serve_forever()
            assert server.draining
            # New connections are refused once the listener closed.
            with pytest.raises((ConnectionError, OSError)):
                await asyncio.open_connection(host, port)
            await client.close()
        run_with_server(scenario)

    def test_draining_server_rejects_queries_retryably(self):
        async def scenario(server):
            host, port = server.address
            client = await Client(host, port,
                                  retry=RetryPolicy(attempts=1)
                                  ).connect()
            server._draining = True   # drain without closing the socket
            try:
                with pytest.raises(Exception) as info:
                    await client.query("X : employee")
                assert "shutting_down" in str(info.value)
                assert (await client.health())["status"] == "draining"
            finally:
                server._draining = False
                await client.close()
        run_with_server(scenario)


class TestServerFaultPoints:
    def test_accept_fault_costs_one_connection(self):
        async def scenario(server):
            host, port = server.address
            with inject("server.accept", nth=1):
                doomed = await Client(host, port).connect()
                with pytest.raises(ConnectionLost):
                    await doomed.request({"op": "health"})
            async with Client(host, port) as client:
                assert (await client.health())["status"] == "ok"
        run_with_server(scenario)

    def test_dispatch_fault_answers_internal_and_survives(self):
        async def scenario(server):
            host, port = server.address
            async with Client(host, port) as client:
                with inject("server.dispatch", nth=1):
                    with pytest.raises(RequestError) as info:
                        await client.query("X : employee")
                    assert "InjectedFault" in str(info.value)
                res = await client.query("X : employee", ["X"])
                assert len(res["answers"]) == 3
                assert server.stats.internal_errors == 1
        run_with_server(scenario)

    def test_maintain_fault_rolls_back_and_survives(self):
        async def scenario(server):
            host, port = server.address
            async with Client(host, port) as client:
                with inject("server.maintain", nth=1):
                    with pytest.raises(RequestError) as info:
                        await client.write(
                            [["+isa", "p9", "employee"]])
                    assert "rolled back" in str(info.value)
                answers = (await client.query("X : employee",
                                              ["X"]))["answers"]
                assert [a["X"] for a in answers] == ["p0", "p1", "p2"]
                applied = await client.write(
                    [["+isa", "p9", "employee"]])
                assert applied["applied"] == 1
        run_with_server(scenario)

    def test_respond_fault_drops_connection_not_server(self):
        async def scenario(server):
            host, port = server.address
            doomed = await Client(host, port).connect()
            with inject("server.respond", nth=1):
                with pytest.raises(ConnectionLost):
                    await doomed.request({"op": "health"})
            async with Client(host, port) as client:
                assert (await client.health())["status"] == "ok"
        run_with_server(scenario)


class TestRetryPolicy:
    def test_exponential_growth_with_cap(self):
        policy = RetryPolicy(base_ms=10.0, cap_ms=100.0,
                             rng=random.Random(0))
        delays = [policy.delay_ms(a) for a in range(6)]
        assert all(5.0 <= d <= 100.0 for d in delays)
        assert max(delays) <= 100.0

    def test_retry_after_hint_overrides_exponential(self):
        policy = RetryPolicy(base_ms=10.0, rng=random.Random(0))
        hinted = policy.delay_ms(0, retry_after_ms=500.0)
        assert 250.0 <= hinted <= 500.0

    def test_seeded_rng_replays_the_schedule(self):
        a = RetryPolicy(rng=random.Random(42))
        b = RetryPolicy(rng=random.Random(42))
        assert [a.delay_ms(i) for i in range(4)] == \
            [b.delay_ms(i) for i in range(4)]


class TestSitesRegistry:
    def test_registry_matches_planted_sites(self):
        import pathlib
        import re

        from repro.testing.faults import SITES

        src = pathlib.Path("src/repro")
        planted = set()
        for path in src.rglob("*.py"):
            planted.update(re.findall(r'fault_point\("([^"]+)"\)',
                                      path.read_text()))
        assert planted == SITES


class TestDurableServer:
    def test_writes_survive_restart(self, tmp_path):
        data_dir = str(tmp_path / "data")

        async def write_round(server):
            host, port = server.address
            async with Client(host, port) as client:
                await client.write([["+isa", "d1", "employee"],
                                    ["+scalar", "age", "d1", [], 41]])
                res = await client.query("X : employee", ["X"])
                return sorted(a["X"] for a in res["answers"])

        async def read_round(server):
            host, port = server.address
            async with Client(host, port) as client:
                res = await client.query("X : employee", ["X"])
                stats = await client.stats()
                return (sorted(a["X"] for a in res["answers"]),
                        stats["durability"])

        before = run_with_server(write_round, data_dir=data_dir)
        # Restart with an EMPTY seed: the recovered state must win.
        after, durability = run_with_server(read_round, db=Database(),
                                            data_dir=data_dir)
        assert before == after == ["d1", "p0", "p1", "p2"]
        assert durability["recovered_entries"] >= 2
        assert durability["truncated_tail"] == 0

    def test_stats_report_durability(self, tmp_path):
        async def scenario(server):
            host, port = server.address
            async with Client(host, port) as client:
                await client.write([["+isa", "x", "c"]])
                stats = await client.stats()
            durability = stats["durability"]
            assert durability["fsync"] == "batch"
            assert durability["wal_batches"] == 1
            assert durability["wal_entries"] == 1
            assert durability["wal_syncs"] >= 1
            assert durability["wal_size"] > 0
            assert durability["checkpoints"] >= 1  # the open checkpoint
            assert durability["data_dir"] == str(tmp_path / "d")
        run_with_server(scenario, data_dir=str(tmp_path / "d"))

    def test_memory_server_reports_no_durability(self):
        async def scenario(server):
            host, port = server.address
            async with Client(host, port) as client:
                stats = await client.stats()
            assert stats["durability"] is None
        run_with_server(scenario)

    def test_failed_batch_leaves_wal_clean(self, tmp_path):
        data_dir = str(tmp_path / "data")

        async def scenario(server):
            host, port = server.address
            async with Client(host, port) as client:
                await client.write([["+isa", "good", "c"]])
                with pytest.raises(RequestError):
                    # Conflict on p0's age after one applied change:
                    # the whole batch rolls back, including its WAL
                    # trace.
                    await client.write([["+isa", "bad", "c"],
                                        ["+scalar", "age", "p0", [], 0]])
                res = await client.query("X : c", ["X"])
                assert [a["X"] for a in res["answers"]] == ["good"]
        run_with_server(scenario, data_dir=data_dir)

        from repro.oodb.checkpoint import recover
        result = recover(tmp_path / "data")
        assert result.database.hierarchy.isa(
            result.database.obj("good"), result.database.obj("c"))
        assert not result.database.hierarchy.isa(
            result.database.obj("bad"), result.database.obj("c"))

    def test_injected_maintain_fault_repairs_wal(self, tmp_path):
        data_dir = str(tmp_path / "data")

        async def scenario(server):
            host, port = server.address
            async with Client(host, port) as client:
                await client.write([["+isa", "before", "c"]])
                with inject("wal.fsync", nth=1):
                    with pytest.raises(ServerError):
                        await client.write([["+isa", "lost", "c"]])
                # The server survives and accepts the retry.
                await client.write([["+isa", "after", "c"]])
                res = await client.query("X : c", ["X"])
                assert sorted(a["X"] for a in res["answers"]) == \
                    ["after", "before"]
        run_with_server(scenario, data_dir=data_dir)

        from repro.oodb.checkpoint import recover
        result = recover(tmp_path / "data")
        db = result.database
        assert db.hierarchy.isa(db.obj("before"), db.obj("c"))
        assert db.hierarchy.isa(db.obj("after"), db.obj("c"))
        assert not db.hierarchy.isa(db.obj("lost"), db.obj("c"))

    def test_background_checkpoint_by_wal_size(self, tmp_path):
        async def scenario(server):
            host, port = server.address
            async with Client(host, port) as client:
                for index in range(20):
                    await client.write(
                        [["+isa", f"w{index}", "c"]])
                for _ in range(200):
                    if server.stats.checkpoints >= 1:
                        break
                    await asyncio.sleep(0.01)
                stats = await client.stats()
            assert stats["checkpoints"] >= 1
        run_with_server(scenario, data_dir=str(tmp_path / "data"),
                        checkpoint_bytes=256,
                        checkpoint_interval_ms=10.0)
