"""Stratified negation (extension; see DESIGN.md and [NT89])."""

import pytest

from repro.core.ast import Negation, Var
from repro.core.entailment import entails
from repro.core.valuation import VariableValuation
from repro.engine import Engine
from repro.errors import EvaluationError, StratificationError
from repro.lang.parser import parse_literal, parse_program, parse_rule
from repro.oodb.database import Database
from repro.oodb.oid import NamedOid
from repro.query import Query


def n(value):
    return NamedOid(value)


@pytest.fixture
def db():
    db = Database()
    db.add_object("car1", classes=["automobile"], scalars={"color": "red"})
    db.add_object("car2", classes=["automobile"])
    return db


class TestSyntax:
    def test_parse_negation(self):
        literal = parse_literal("not X[color -> red]")
        assert isinstance(literal, Negation)

    def test_parse_negated_comparison(self):
        literal = parse_literal("not X.age >= 30")
        assert isinstance(literal, Negation)

    def test_double_negation_rejected(self):
        from repro.errors import PathLogSyntaxError

        with pytest.raises(PathLogSyntaxError, match="double negation"):
            parse_literal("not not X[a -> 1]")

    def test_round_trip(self):
        rule = parse_rule("X[a -> 1] <- X : c, not X[b -> 2].")
        assert str(rule) == "X[a -> 1] <- X : c, not X[b -> 2]."
        assert parse_rule(str(rule)) == rule

    def test_not_is_reserved(self):
        from repro.core.ast import Name
        from repro.core.pretty import to_text
        from repro.lang.parser import parse_reference

        # A name spelled "not" must be quoted to survive.
        assert to_text(Name("not")) == '"not"'
        assert parse_reference('"not"') == Name("not")


class TestEntailment:
    def test_negation_complements(self, db):
        nu = VariableValuation({Var("X"): n("car2")})
        assert entails(db, parse_literal("not X[color -> red]"), nu)
        nu2 = VariableValuation({Var("X"): n("car1")})
        assert not entails(db, parse_literal("not X[color -> red]"), nu2)


class TestQueries:
    def test_negation_filters_answers(self, db):
        rows = Query(db).all("X : automobile, not X[color -> C]")
        assert [r.value("X") for r in rows] == ["car2"]

    def test_negation_local_variables_are_existential(self, db):
        # C occurs only inside the negation: "X has NO color at all".
        assert Query(db).ask("car2 : automobile, not car2[color -> C]")
        assert not Query(db).ask("car1 : automobile, not car1[color -> C]")

    def test_standalone_negation_reads_as_closed_formula(self, db):
        # X occurs nowhere else, so it is negation-local (existential):
        # "no automobile is red" is false, "none is purple" is true.
        assert not Query(db).ask("not X[color -> red]")
        assert Query(db).ask("not X[color -> purple]")

    def test_unsafe_negation_raises(self, db):
        # X is shared between two negations: neither can bind it, and
        # treating it as local in either would change meaning.
        with pytest.raises(EvaluationError, match="unsafe negation"):
            Query(db).all("not X[color -> red], not X[color -> blue]",
                          variables=[])


class TestEngine:
    def test_negation_over_base_facts(self, db):
        program = parse_program("""
            X[colorless -> yes] <- X : automobile, not X[color -> C].
        """)
        out = Engine(db, program).run()
        assert out.scalar_apply(n("colorless"), n("car2")) == n("yes")
        assert out.scalar_apply(n("colorless"), n("car1")) is None

    def test_negation_over_derived_facts_is_stratified(self):
        engine = Engine(Database(), parse_program("""
            p1[kids ->> {a}]. a[kids ->> {b}].
            p1 : node. a : node. b : node.
            X[desc ->> {Y}] <- X[kids ->> {Y}].
            X[desc ->> {Y}] <- X..desc[kids ->> {Y}].
            X[leaf -> yes] <- X : node, not X[kids ->> {Y}].
        """))
        out = engine.run()
        assert engine.stats.strata == 2
        assert out.scalar_apply(n("leaf"), n("b")) == n("yes")
        assert out.scalar_apply(n("leaf"), n("p1")) is None

    def test_negation_cycle_rejected(self):
        with pytest.raises(StratificationError):
            Engine(Database(), parse_program("""
                o : c.
                X[a -> yes] <- X : c, not X[b -> yes].
                X[b -> yes] <- X : c, not X[a -> yes].
            """)).run()

    def test_negation_of_path_existence(self):
        # The paper's bachelor: john has no spouse.
        out = Engine(Database(), parse_program("""
            john : person. mary : person. mary[spouse -> bob].
            X[single -> yes] <- X : person, not X.spouse[].
        """)).run()
        assert out.scalar_apply(n("single"), n("john")) == n("yes")
        assert out.scalar_apply(n("single"), n("mary")) is None

    def test_negated_comparison(self):
        out = Engine(Database(), parse_program("""
            p1[age -> 30]. p2[age -> 70].
            X[young -> yes] <- X[age -> A], not A >= 65.
        """)).run()
        assert out.scalar_apply(n("young"), n("p1")) == n("yes")
        assert out.scalar_apply(n("young"), n("p2")) is None

    def test_model_checked_against_definition5(self):
        program = parse_program("""
            car1 : automobile. car1[color -> red].
            car2 : automobile.
            X[colorless -> yes] <- X : automobile, not X[color -> red].
        """)
        out = Engine(Database(), program).run()
        from repro.core.entailment import rule_holds

        for rule in program:
            assert rule_holds(out, rule)
