"""Write-ahead log tests: framing, segments, commit, trim safety."""

import os
import zlib

import pytest

from repro.oodb.database import Database
from repro.oodb.oid import NamedOid
from repro.oodb.serialize import FORMAT_VERSION, SerializationError
from repro.oodb.wal import (
    WalDisrupted,
    WalStateError,
    WriteAheadLog,
    frame,
    read_frames,
    scan_segment,
    segment_files,
    segment_name,
)
from repro.testing import InjectedFault, inject


def n(value):
    return NamedOid(value)


class TestFraming:
    def test_round_trip(self):
        data = frame({"a": 1}) + frame({"b": [2, 3]})
        records, offsets, good_end, tear = read_frames(data)
        assert records == [{"a": 1}, {"b": [2, 3]}]
        assert offsets[0] == 0 and offsets[1] == len(frame({"a": 1}))
        assert good_end == len(data)
        assert tear is None

    def test_truncated_prefix_tears(self):
        data = frame({"a": 1}) + b"\x00\x00"
        records, _, good_end, tear = read_frames(data)
        assert records == [{"a": 1}]
        assert good_end == len(frame({"a": 1}))
        assert tear == "truncated frame prefix"

    def test_overrunning_length_tears(self):
        good = frame({"a": 1})
        data = good + (999).to_bytes(4, "big") + b"\x00\x00\x00\x00xy"
        records, _, good_end, tear = read_frames(data)
        assert records == [{"a": 1}]
        assert good_end == len(good)
        assert tear == "frame runs past end of segment"

    def test_crc_mismatch_tears(self):
        good = frame({"a": 1})
        bad = bytearray(frame({"b": 2}))
        bad[-1] ^= 0xFF
        records, _, good_end, tear = read_frames(good + bytes(bad))
        assert records == [{"a": 1}]
        assert good_end == len(good)
        assert tear == "CRC mismatch"

    def test_non_object_payload_tears(self):
        payload = b"[1,2]"
        data = (len(payload).to_bytes(4, "big")
                + zlib.crc32(payload).to_bytes(4, "big") + payload)
        records, _, _, tear = read_frames(frame({"a": 1}) + data)
        assert records == [{"a": 1}]
        assert tear == "non-object record"

    def test_empty_buffer_is_clean(self):
        assert read_frames(b"") == ([], [], 0, None)


class TestSegments:
    def test_names_sort_by_cursor(self, tmp_path):
        for cursor in (30, 2, 100):
            (tmp_path / segment_name(cursor)).write_bytes(b"")
        assert [c for c, _ in segment_files(tmp_path)] == [2, 30, 100]

    def test_scan_reads_header_and_records(self, tmp_path):
        path = tmp_path / segment_name(7)
        path.write_bytes(frame({"wal": FORMAT_VERSION, "cursor": 7})
                         + frame({"begin": 7}))
        scan = scan_segment(path)
        assert scan.start_cursor == 7
        assert scan.records == [{"begin": 7}]
        assert not scan.torn

    def test_scan_rejects_wrong_format_version(self, tmp_path):
        path = tmp_path / segment_name(0)
        path.write_bytes(frame({"wal": FORMAT_VERSION + 1, "cursor": 0}))
        with pytest.raises(SerializationError):
            scan_segment(path)

    def test_scan_rejects_cursor_name_mismatch(self, tmp_path):
        path = tmp_path / segment_name(5)
        path.write_bytes(frame({"wal": FORMAT_VERSION, "cursor": 9}))
        with pytest.raises(SerializationError):
            scan_segment(path)

    def test_torn_header_is_a_tear_not_an_error(self, tmp_path):
        path = tmp_path / segment_name(0)
        path.write_bytes(b"\x00\x01")
        scan = scan_segment(path)
        assert scan.start_cursor is None
        assert scan.torn


def make_wal(tmp_path, **kwargs):
    db = Database()
    db.begin_changes()
    return db, WriteAheadLog(tmp_path, db, **kwargs)


class TestWriteAheadLog:
    def test_rejects_unknown_fsync_policy(self, tmp_path):
        db = Database()
        db.begin_changes()
        with pytest.raises(ValueError):
            WriteAheadLog(tmp_path, db, fsync="sometimes")

    def test_commit_brackets_batch_with_markers(self, tmp_path):
        db, wal = make_wal(tmp_path)
        db.assert_isa(n("tom"), n("cat"))
        db.assert_scalar(n("age"), n("tom"), (), n(3))
        assert wal.commit() == 2
        wal.close()
        scan = scan_segment(wal.segment_path)
        assert scan.records[0] == {"begin": 0}
        assert [r["e"][0] for r in scan.records[1:3]] == ["+", "+"]
        assert scan.records[3] == {"commit": 2}

    def test_commit_without_changes_is_zero(self, tmp_path):
        db, wal = make_wal(tmp_path)
        assert wal.commit() == 0
        assert wal.batches == 0
        wal.close()

    def test_commit_requires_change_log(self, tmp_path):
        db = Database()
        db.begin_changes()
        wal = WriteAheadLog(tmp_path, db)
        db.trim_changes()  # keeps the log; end it explicitly instead
        db._change_log = None
        with pytest.raises(WalStateError):
            wal.commit()

    def test_disrupted_log_raises_typed_error(self, tmp_path):
        db, wal = make_wal(tmp_path)
        db.alias("t", n("tom"))
        db.alias("t", n("thomas"))  # rebinding disrupts the log
        with pytest.raises(WalDisrupted):
            wal.commit()
        wal.close()

    def test_lease_pins_flushed_not_appended(self, tmp_path):
        """Satellite: trimming during a slow fsync cannot drop
        unflushed entries -- the WAL's lease sits at the *flushed*
        cursor, so ``trim_changes`` keeps everything a failed or
        in-flight commit still needs."""
        db, wal = make_wal(tmp_path)
        db.assert_isa(n("a"), n("b"))
        wal.commit()
        db.assert_isa(n("c"), n("d"))
        db.assert_isa(n("e"), n("f"))
        # A slow fsync: the entries are appended in memory but the
        # commit fails before the sync completes.
        with pytest.raises(InjectedFault):
            with inject("wal.fsync"):
                wal.commit()
        assert wal.flushed == 1
        # Another consumer trims as far as it can -- the WAL's lease
        # must hold the line at the flushed cursor.
        db.trim_changes()
        log = db.change_log
        assert log.since(wal.flushed), "unflushed entries were trimmed"
        # The retry can still journal them durably.
        assert wal.commit() == 2
        db.trim_changes()
        assert log.since(wal.flushed) == []
        wal.close()

    def test_failed_commit_leaves_cursor_for_retry(self, tmp_path):
        db, wal = make_wal(tmp_path)
        db.assert_isa(n("a"), n("b"))
        with pytest.raises(InjectedFault):
            with inject("wal.append"):
                wal.commit()
        assert wal.flushed == 0
        assert wal.commit() == 1
        assert wal.flushed == 1
        wal.close()
        scan = scan_segment(wal.segment_path)
        commits = [r for r in scan.records if "commit" in r]
        assert commits == [{"commit": 1}]

    def test_discard_pending_truncates_partial_batch(self, tmp_path):
        db, wal = make_wal(tmp_path)
        db.assert_isa(n("a"), n("b"))
        wal.commit()
        clean_size = os.path.getsize(wal.segment_path)
        checkpoint = db.change_log.cursor()
        db.assert_isa(n("x"), n("y"))
        with pytest.raises(InjectedFault):
            with inject("wal.fsync"):
                wal.commit()
        assert os.path.getsize(wal.segment_path) > clean_size
        db.rollback_changes(checkpoint)
        wal.discard_pending()
        assert os.path.getsize(wal.segment_path) == clean_size
        # Flushed advanced past the rolled-back suffix (a net no-op).
        assert wal.flushed == db.change_log.cursor()
        wal.close()

    def test_skip_to_refuses_backwards(self, tmp_path):
        db, wal = make_wal(tmp_path)
        db.assert_isa(n("a"), n("b"))
        wal.commit()
        with pytest.raises(WalStateError):
            wal.skip_to(0)
        wal.close()

    def test_rotate_starts_new_segment(self, tmp_path):
        db, wal = make_wal(tmp_path)
        db.assert_isa(n("a"), n("b"))
        wal.commit()
        first = wal.segment_path
        wal.rotate(db.change_log.cursor())
        assert wal.segment_path != first
        db.assert_isa(n("c"), n("d"))
        wal.commit()
        wal.close()
        assert len(segment_files(tmp_path)) == 2
        scan = scan_segment(wal.segment_path)
        assert scan.start_cursor == 1
        assert scan.records[0] == {"begin": 1}

    def test_rotate_onto_empty_same_segment_is_noop(self, tmp_path):
        db, wal = make_wal(tmp_path)
        first = wal.segment_path
        wal.rotate(0)
        assert wal.segment_path == first
        assert len(segment_files(tmp_path)) == 1
        wal.close()

    def test_faulted_rotate_leaves_no_orphan(self, tmp_path):
        db, wal = make_wal(tmp_path)
        db.assert_isa(n("a"), n("b"))
        wal.commit()
        with pytest.raises(InjectedFault):
            with inject("wal.rotate"):
                wal.rotate(db.change_log.cursor())
        # The old segment is still the active one and no header-only
        # successor shadows it.
        assert len(segment_files(tmp_path)) == 1
        db.assert_isa(n("c"), n("d"))
        assert wal.commit() == 1
        wal.close()

    def test_durable_cursor_applies_base(self, tmp_path):
        db = Database()
        db.begin_changes()
        wal = WriteAheadLog(tmp_path, db, base=10)
        db.assert_isa(n("a"), n("b"))
        wal.commit()
        assert wal.durable_cursor == 11
        scan = scan_segment(wal.segment_path)
        assert scan.start_cursor == 10
        assert scan.records[0] == {"begin": 10}
        assert scan.records[-1] == {"commit": 11}
        wal.close()

    def test_size_counts_all_segments(self, tmp_path):
        db, wal = make_wal(tmp_path)
        db.assert_isa(n("a"), n("b"))
        wal.commit()
        wal.rotate(db.change_log.cursor())
        total = sum(path.stat().st_size
                    for _, path in segment_files(tmp_path))
        assert wal.size_bytes() == total > 0
        wal.close()
