"""Engine tests: fixpoints, semi-naive parity, limits, statistics."""

import pytest

from repro.engine import Engine, EngineLimits
from repro.engine.fixpoint import evaluate
from repro.errors import ResourceLimitError, ScalarConflictError
from repro.lang.parser import parse_program
from repro.oodb.database import Database
from repro.oodb.oid import NamedOid
from repro.query.query import Query


def n(value):
    return NamedOid(value)


def run(text: str, *, seminaive=True, limits=None, db=None):
    engine = Engine(db or Database(), parse_program(text),
                    seminaive=seminaive, limits=limits)
    return engine.run(), engine


class TestBasics:
    def test_facts_are_loaded(self):
        out, _ = run("p1 : employee. p1[age -> 30]. p1[kids ->> {a, b}].")
        assert out.isa(n("p1"), n("employee"))
        assert out.scalar_apply(n("age"), n("p1")) == n(30)
        assert out.set_apply(n("kids"), n("p1")) == {n("a"), n("b")}

    def test_input_database_not_mutated(self):
        db = Database()
        run("p1[age -> 30].", db=db)
        assert db.scalar_apply(n("age"), n("p1")) is None

    def test_simple_derivation(self):
        out, _ = run("""
            p1 : employee. p1[age -> 66].
            X[senior -> yes] <- X : employee, X.age >= 65.
        """)
        assert out.scalar_apply(n("senior"), n("p1")) == n("yes")

    def test_chained_rules(self):
        out, _ = run("""
            p1[a -> 1].
            X[b -> 2] <- X[a -> 1].
            X[c -> 3] <- X[b -> 2].
        """)
        assert out.scalar_apply(n("c"), n("p1")) == n(3)

    def test_derived_isa_feeds_rules(self):
        out, _ = run("""
            p1[age -> 30].
            X : adult <- X.age >= 18, X[age -> A].
            X[canVote -> yes] <- X : adult.
        """)
        assert out.scalar_apply(n("canVote"), n("p1")) == n("yes")

    def test_scalar_conflict_raised(self):
        with pytest.raises(ScalarConflictError):
            run("""
                p1[a -> 1]. p2[a -> 2].
                X[out -> V] <- Y[a -> V], X : sink.
                s : sink.
            """)


class TestRecursion:
    DESC = """
        peter[kids ->> {tim, mary}].
        tim[kids ->> {sally}].
        mary[kids ->> {tom, paul}].
        X[desc ->> {Y}] <- X[kids ->> {Y}].
        X[desc ->> {Y}] <- X..desc[kids ->> {Y}].
    """

    def test_transitive_closure(self):
        out, _ = run(self.DESC)
        assert out.set_apply(n("desc"), n("peter")) == {
            n("tim"), n("mary"), n("sally"), n("tom"), n("paul"),
        }

    def test_naive_and_seminaive_agree(self):
        fast, _ = run(self.DESC, seminaive=True)
        slow, _ = run(self.DESC, seminaive=False)
        assert dict(fast.sets.items()) == dict(slow.sets.items())
        assert dict(fast.scalars.items()) == dict(slow.scalars.items())

    def test_seminaive_does_less_work_on_chains(self):
        from repro.datasets.genealogy import chain_family, desc_rules

        db, _ = chain_family(30)
        fast = Engine(db, desc_rules(), seminaive=True)
        fast.run()
        slow = Engine(db, desc_rules(), seminaive=False)
        slow.run()
        assert fast.stats.firings * 5 < slow.stats.firings


class TestStrataExecution:
    def test_head_inclusion_needs_no_stratification(self):
        # A superset filter in a HEAD is hoisted into per-member
        # derivation, which the fixpoint maintains monotonically -- the
        # paper requires stratification only for bodies.
        out, engine = run("""
            m : helper. k : helper.
            p1[assistants ->> {X}] <- X : helper.
            p2[friends ->> p1..assistants] <- p2 : anchor.
            p2 : anchor.
        """)
        assert out.set_apply(n("friends"), n("p2")) == {n("m"), n("k")}
        assert engine.stats.strata == 1

    def test_body_superset_rule_sees_completed_set(self):
        out, engine = run("""
            m : helper. k : helper.
            p1[assistants ->> {X}] <- X : helper.
            p2[fullCrew -> yes] <- p2[friends ->> p1..assistants].
            p2[friends ->> {m, k, extra}].
        """)
        assert out.scalar_apply(n("fullCrew"), n("p2")) == n("yes")
        assert engine.stats.strata == 2

    def test_vacuous_superset_in_body(self):
        out, _ = run("""
            p2 : anchor.
            X[lonely -> yes] <- X : anchor, X[friends ->> p9..assistants].
        """)
        assert out.scalar_apply(n("lonely"), n("p2")) == n("yes")


class TestVirtualObjects:
    def test_virtual_chain_bounded_by_guard(self):
        # Each person gets a virtual boss, but bosses are not persons,
        # so creation stops after one level.
        out, engine = run("""
            p1 : person.
            X.boss[level -> up] <- X : person.
        """)
        assert out.virtual_count() == 1
        assert engine.stats.virtuals_created == 1

    def test_runaway_virtuals_hit_limit(self):
        limits = EngineLimits(max_virtual_depth=5)
        with pytest.raises(ResourceLimitError, match="nesting"):
            run("""
                p1 : person.
                X.boss : person <- X : person.
            """, limits=limits)

    def test_universe_limit(self):
        limits = EngineLimits(max_universe=10, max_virtual_depth=10_000)
        with pytest.raises(ResourceLimitError):
            run("""
                p1 : person.
                X.boss : person <- X : person.
            """, limits=limits)


class TestStats:
    def test_stats_shape(self):
        _, engine = run("""
            p1[a -> 1].
            X[b -> 2] <- X[a -> 1].
        """)
        stats = engine.stats
        assert stats.strata == 1
        assert stats.derived_scalar == 2
        assert stats.derived_total == 2
        assert stats.elapsed_s >= 0
        row = stats.as_row()
        assert row["derived"] == 2

    def test_evaluate_convenience(self):
        out = evaluate(Database(), parse_program("p1[a -> 1]."))
        assert out.scalar_apply(n("a"), n("p1")) == n(1)


class TestGenericMethods:
    def test_generic_tc_exact_paper_answer(self):
        out, _ = run("""
            peter[kids ->> {tim, mary}].
            tim[kids ->> {sally}].
            mary[kids ->> {tom, paul}].
            X[(M.tc) ->> {Y}] <- X[M ->> {Y}].
            X[(M.tc) ->> {Y}] <- X..(M.tc)[M ->> {Y}].
        """)
        found = Query(out).objects("peter..(kids.tc)")
        assert {str(o) for o in found} == {"tim", "mary", "sally",
                                           "tom", "paul"}

    def test_method_depth_limit_controls_towers(self):
        program = """
            peter[kids ->> {tim}].
            X[(M.tc) ->> {Y}] <- X[M ->> {Y}].
            X[(M.tc) ->> {Y}] <- X..(M.tc)[M ->> {Y}].
        """
        shallow, _ = run(program,
                         limits=EngineLimits(max_method_depth=1))
        deeper, _ = run(program,
                        limits=EngineLimits(max_method_depth=2))
        # Raising the bound derives facts for tc(tc(kids)) as well.
        assert deeper.virtual_count() > shallow.virtual_count()
