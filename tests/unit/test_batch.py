"""Batched-executor tests: column kernels, delta seeds, head emitters."""

import pytest

from repro.core.ast import Var
from repro.engine import Engine
from repro.engine.batch import (
    compile_batch_delta_plan,
    compile_batch_plan,
    head_emitter,
)
from repro.engine.compile import compile_delta_plan, compile_plan
from repro.engine.normalize import normalize_program
from repro.engine.planner import build_plan, relevant_bound
from repro.engine.solve import execute_plan, resolve_executor, solve
from repro.errors import EvaluationError, ScalarConflictError
from repro.flogic.atoms import SetMemberAtom
from repro.flogic.flatten import flatten_conjunction
from repro.lang.parser import parse_program, parse_query
from repro.oodb.database import Database
from repro.oodb.oid import NamedOid

from repro.core.ast import Name


def n(value):
    return NamedOid(value)


@pytest.fixture
def db():
    db = Database()
    db.subclass("automobile", "vehicle")
    for i, color in enumerate(["red", "blue", "red"]):
        db.add_object(f"car{i}", classes=["automobile"],
                      scalars={"color": color, "cylinders": 4 if i else 6})
    db.add_object("p1", classes=["employee"], scalars={"age": 30},
                  sets={"vehicles": ["car0", "car1"]})
    db.add_object("p2", classes=["employee"], scalars={"age": 40},
                  sets={"vehicles": ["car2"]})
    return db


def atoms_for(text):
    return flatten_conjunction(parse_query(text))


def batched(db, text, bound=()):
    atoms = atoms_for(text)
    plan = build_plan(db, atoms, bound)
    return compile_batch_plan(db, plan), plan, atoms


def answer_set(bindings):
    return {frozenset(b.items()) for b in bindings}


class TestKernelSelection:
    def test_probe_and_filter_kernels(self, db):
        compiled, _, _ = batched(db, "Y[color -> blue], X[vehicles ->> {Y}]")
        assert compiled.kernel_names == ("batch scalar mr-probe",
                                         "batch set mm-probe")

    def test_subject_navigation_kernels(self, db):
        atoms = atoms_for("X[vehicles ->> {V}], V[color -> C]")
        plan = build_plan(db, atoms, {Var("X")})
        compiled = compile_batch_plan(db, plan)
        assert compiled.kernel_names == ("batch set iter", "batch scalar get")

    def test_isa_and_compare_kernels(self, db):
        compiled, _, _ = batched(db, "X : employee, X.age >= 35")
        assert "batch isa members" in compiled.kernel_names
        assert "batch compare" in compiled.kernel_names

    def test_unbatchable_steps_fall_back_rowwise(self, db):
        compiled, _, _ = batched(
            db, "X[vehicles ->> p2..vehicles], not X[age -> 30]")
        assert any(name.startswith("batch row superset")
                   for name in compiled.kernel_names)
        assert any(name.startswith("batch row negation")
                   for name in compiled.kernel_names)

    def test_builtin_self_kernel(self, db):
        compiled, _, _ = batched(db, "p1.self[Y]")
        assert compiled.kernel_names[0] == "batch self fwd"

    def test_memoised_per_database_and_policy(self, db):
        _, plan, _ = batched(db, "X[vehicles ->> {V}]")
        assert compile_batch_plan(db, plan) is compile_batch_plan(db, plan)
        # The tuple-at-a-time lowering coexists under its own cache key.
        assert compile_plan(db, plan) is not compile_batch_plan(db, plan)


class TestExecutionParity:
    QUERIES = [
        "X : employee..vehicles[color -> red]",
        "X : employee..vehicles[color -> C]",
        "X : employee, X.age >= 35",
        "X[color -> X]",                     # repeated var: scan, not probe
        "X : X",                             # repeated var in isa
        "X.self[Y]",                         # builtin over the universe
        "p3[M ->> {V}], V[color -> red]",    # empty subject bucket
        "X[vehicles ->> p2..vehicles]",      # superset bridge
        "X : employee, not X[age -> 30]",    # negation bridge
        "X[M ->> {V}]",                      # unbound method enumeration
        "Y[cylinders -> 6]",                 # single probe
    ]

    def test_same_answers_as_other_executors(self, db):
        for text in self.QUERIES:
            atoms = atoms_for(text)
            batch = answer_set(solve(db, atoms, executor="batch"))
            tuple_ = answer_set(solve(db, atoms, executor="compiled"))
            interp = answer_set(solve(db, atoms, compiled=False))
            assert batch == tuple_ == interp, text

    def test_counters_match_tuple_executor(self, db):
        for text in self.QUERIES:
            atoms = atoms_for(text)
            plan = build_plan(db, atoms, ())
            batch_counters = [0] * len(plan.steps)
            tuple_counters = [0] * len(plan.steps)
            list(execute_plan(db, plan, {}, counters=batch_counters,
                              executor="batch"))
            list(execute_plan(db, plan, {}, counters=tuple_counters,
                              executor="compiled"))
            assert batch_counters == tuple_counters, text

    def test_seed_binding_extends_rows(self, db):
        atoms = atoms_for("X[vehicles ->> {V}], V[color -> C]")
        bound = relevant_bound(atoms, {Var("X")})
        plan = build_plan(db, atoms, bound)
        compiled = compile_batch_plan(db, plan)
        rows = list(compiled.execute({Var("X"): n("p1")}))
        assert all(row[Var("X")] == n("p1") for row in rows)
        assert {row[Var("V")] for row in rows} == {n("car0"), n("car1")}

    def test_missing_seed_variable_raises(self, db):
        _, plan, _ = batched(db, "X[age -> A]", bound={Var("X")})
        compiled = compile_batch_plan(db, plan)
        with pytest.raises(EvaluationError, match="seed binding"):
            list(compiled.execute({}))
        with pytest.raises(EvaluationError, match="no seed binding"):
            list(compiled.execute(None))

    def test_extra_seed_variable_raises(self, db):
        _, plan, _ = batched(db, "X[age -> A]", bound={Var("X")})
        compiled = compile_batch_plan(db, plan)
        with pytest.raises(EvaluationError, match="also binds"):
            list(compiled.execute({Var("X"): n("p1"), Var("A"): n(30)}))

    def test_projection_restricts_output(self, db):
        compiled, _, _ = batched(db, "X[vehicles ->> {V}], V[color -> C]")
        rows = list(compiled.executor(project=(Var("X"),))(None))
        assert rows and all(set(row) == {Var("X")} for row in rows)

    def test_resolve_executor_rejects_unknown(self):
        with pytest.raises(ValueError, match="unknown executor"):
            resolve_executor("vectorized", True)


class TestDeltaPlans:
    def test_delta_columns_match_tuple_delta(self, db):
        atom = SetMemberAtom(Name("vehicles"), Var("X"), (), Var("V"))
        rest = atoms_for("V[color -> C]")
        bound = relevant_bound(rest, atom.variables())
        plan = build_plan(db, rest, bound)
        batch = compile_batch_delta_plan(db, atom, plan)
        tuple_ = compile_delta_plan(db, atom, plan)
        delta = [
            ("set", n("vehicles"), n("p1"), (), n("car0")),
            ("scalar", n("age"), n("p1"), (), n(30)),  # wrong kind
            ("set", n("vehicles"), n("p2"), (), n("car2")),
        ]
        assert (answer_set(batch.execute(delta))
                == answer_set(tuple_.execute(delta)))
        batch_counters = [0] * (len(plan.steps) + 1)
        tuple_counters = [0] * (len(plan.steps) + 1)
        list(batch.executor(batch_counters)(delta))
        list(tuple_.executor(tuple_counters)(delta))
        assert batch_counters == tuple_counters == [2, 2]

    def test_whole_log_becomes_one_batch(self, db):
        atom = SetMemberAtom(Name("vehicles"), Var("X"), (), Var("V"))
        rest = atoms_for("V[color -> C]")
        plan = build_plan(db, rest, relevant_bound(rest, atom.variables()))
        batch = compile_batch_delta_plan(db, atom, plan)
        execute, out = batch.column_executor()
        delta = [("set", n("vehicles"), n("p1"), (), n("car0")),
                 ("set", n("vehicles"), n("p1"), (), n("car1"))]
        cols, nrows = execute(delta)
        assert nrows == 2
        slots = dict(out)
        assert cols[slots[Var("X")]] == [n("p1"), n("p1")]


class TestHeadEmitters:
    def rule_for(self, text):
        return normalize_program(parse_program(text))[0]

    def test_simple_set_head_emits_directly(self, db):
        rule = self.rule_for("X[reach ->> {V}] <- X[vehicles ->> {V}].")
        slots = {Var("X"): 0, Var("V"): 1}
        emit = head_emitter(db, rule, slots)
        assert emit is not None
        log = []
        emit([[n("p1"), n("p2")], [n("car0"), n("car2")]], 2, log)
        assert log == [("set", n("reach"), n("p1"), (), n("car0")),
                       ("set", n("reach"), n("p2"), (), n("car2"))]
        assert db.sets.get(n("reach"), n("p1")) == frozenset({n("car0")})
        # Re-emitting asserts nothing new and logs nothing.
        log2 = []
        emit([[n("p1")], [n("car0")]], 1, log2)
        assert log2 == []

    def test_multi_template_head_emits_all_templates(self, db):
        rule = self.rule_for(
            "X[marked ->> {V, car0}] <- X[vehicles ->> {V}].")
        slots = {Var("X"): 0, Var("V"): 1}
        emit = head_emitter(db, rule, slots)
        assert emit is not None
        log = []
        emit([[n("p1")], [n("car1")]], 1, log)
        assert ("set", n("marked"), n("p1"), (), n("car1")) in log
        assert ("set", n("marked"), n("p1"), (), n("car0")) in log

    def test_isa_head_emits_memberships(self, db):
        rule = self.rule_for("X : flagged <- X[age -> A].")
        slots = {Var("X"): 0, Var("A"): 1}
        emit = head_emitter(db, rule, slots)
        assert emit is not None
        log = []
        emit([[n("p1")], [n(30)]], 1, log)
        assert log == [("isa", n("p1"), n("flagged"))]
        assert db.isa(n("p1"), n("flagged"))

    def test_nested_molecule_head_has_no_emitter(self, db):
        rule = self.rule_for(
            "X : flagged[why -> V] <- X[vehicles ->> {V}].")
        assert head_emitter(db, rule, {Var("X"): 0, Var("V"): 1}) is None

    def test_virtual_creating_head_has_no_emitter(self, db):
        rule = self.rule_for("X.boss[city -> C] <- X[age -> C].")
        assert head_emitter(db, rule, {Var("X"): 0, Var("C"): 1}) is None

    def test_builtin_identity_head_has_no_emitter(self, db):
        rule = self.rule_for("X[self -> X] <- X[age -> A].")
        assert head_emitter(db, rule, {Var("X"): 0, Var("A"): 1}) is None

    def test_scalar_conflicts_still_raise(self, db):
        rule = self.rule_for("X[age -> V] <- X[cylinders -> V].")
        slots = {Var("X"): 0, Var("V"): 1}
        emit = head_emitter(db, rule, slots)
        with pytest.raises(ScalarConflictError):
            emit([[n("p1")], [n(99)]], 1, [])


class TestEngineIntegration:
    PROGRAM = """
        X[reach ->> {Y}] <- X[next -> Y].
        X[reach ->> {Z}] <- X[reach ->> {Y}], Y[next -> Z].
    """

    @pytest.fixture
    def chain_db(self):
        db = Database()
        for i in range(8):
            db.add_object(f"n{i}", scalars={"next": f"n{i + 1}"})
        return db

    def _sets(self, db):
        return {(key, frozenset(bucket)) for key, bucket in db.sets.items()}

    def test_columnar_is_the_engine_default(self, chain_db):
        engine = Engine(chain_db, parse_program(self.PROGRAM))
        engine.run()
        assert engine._executor == "columnar"
        assert engine.stats.batches > 0
        assert engine.stats.batch_rows > 0

    def test_fixpoint_and_tuple_counters_match_compiled(self, chain_db):
        program = parse_program(self.PROGRAM)
        batch = Engine(chain_db, program, executor="batch")
        via_batch = batch.run()
        tuple_ = Engine(chain_db, program, executor="compiled")
        via_tuple = tuple_.run()
        assert self._sets(via_batch) == self._sets(via_tuple)
        assert batch.stats.tuples == tuple_.stats.tuples
        assert batch.stats.firings == tuple_.stats.firings
        assert batch.stats.derived_total == tuple_.stats.derived_total
        assert tuple_.stats.batches == 0

    def test_explain_names_batch_kernels(self, chain_db):
        engine = Engine(chain_db, parse_program(self.PROGRAM),
                        executor="batch")
        engine.run()
        report = engine.plan_reports()[0]
        assert report.compiled
        assert all(step.kernel.startswith("batch")
                   for step in report.steps)

    def test_support_recording_still_observes_per_binding(self, chain_db):
        chain_db.begin_changes()
        engine = Engine(chain_db, parse_program(self.PROGRAM),
                        record_support=True)
        engine.run()
        assert engine.support is not None
        assert engine.support.counts  # non-recursive rule was tracked
