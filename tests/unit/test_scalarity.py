"""Definition 2: scalar vs. set-valued references (paper Section 4.2)."""

import pytest

from repro.core.ast import Molecule, Name, Paren, Path, Var
from repro.core.scalarity import is_scalar, is_set_valued
from repro.lang.parser import parse_reference


def ref(text: str):
    return parse_reference(text, check=False)


class TestSimpleReferences:
    def test_names_and_variables_are_scalar(self):
        assert is_scalar(Name("mary"))
        assert is_scalar(Name(30))
        assert is_scalar(Var("X"))

    def test_paren_is_transparent(self):
        assert is_scalar(Paren(Name("a")))
        assert is_set_valued(Paren(ref("p1..assistants")))


class TestPaths:
    def test_scalar_method_on_scalar_base(self):
        # Paper: p1.age
        assert is_scalar(ref("p1.age"))

    def test_set_valued_method(self):
        # Paper (4.1): p1..assistants
        assert is_set_valued(ref("p1..assistants"))

    def test_scalar_method_on_set_base_is_set_valued(self):
        # Paper: p1..assistants.salary denotes a SET of salaries.
        assert is_set_valued(ref("p1..assistants.salary"))

    def test_set_method_on_set_base(self):
        # Paper: p1..assistants..projects
        assert is_set_valued(ref("p1..assistants..projects"))

    def test_set_valued_argument_makes_path_set_valued(self):
        # Paper: p1.paidFor@(p1..vehicles) denotes a set of prices.
        assert is_set_valued(ref("p1.paidFor@(p1..vehicles)"))

    def test_scalar_args_keep_path_scalar(self):
        assert is_scalar(ref("john.salary@(1994)"))

    def test_set_valued_method_position(self):
        # A parenthesised set-valued reference at method position.
        assert is_set_valued(
            Path(Name("a"), Paren(ref("p1..assistants")), ())
        )


class TestMolecules:
    def test_filters_do_not_change_scalarity(self):
        # Paper (4.4): p2[friends ->> p1..assistants] is SCALAR -- only
        # the first sub-reference determines the molecule's scalarity.
        assert is_scalar(ref("p2[friends ->> p1..assistants]"))

    def test_molecule_on_set_base_is_set_valued(self):
        # Paper (4.2): p1..assistants[salary -> 1000]
        assert is_set_valued(ref("p1..assistants[salary -> 1000]"))

    def test_isa_molecule_follows_base(self):
        assert is_scalar(ref("x : c"))
        assert is_set_valued(ref("p1..assistants : employee"))

    def test_enum_filter_molecule_is_scalar(self):
        # Paper (4.3): p2[friends ->> {p3, p4}]
        assert is_scalar(ref("p2[friends ->> {p3, p4}]"))


class TestErrors:
    def test_non_reference_rejected(self):
        with pytest.raises(TypeError):
            is_set_valued("not a reference")  # type: ignore[arg-type]
