"""Magic-set rewriting: demand propagation, fallbacks, parity, stats."""

import pytest

from repro.datasets.genealogy import chain_family, desc_rules
from repro.engine import Engine
from repro.engine.magic import (
    ANCHOR,
    DemandEngine,
    MAGIC_PREFIX,
    magic_name,
    query_to_atoms,
    rewrite_for_query,
)
from repro.engine.normalize import normalize_program
from repro.lang.parser import parse_program
from repro.oodb.database import Database
from repro.query import Query


def answers(db, text):
    return [a.sort_key() for a in Query(db).all(text)]


@pytest.fixture
def chain():
    db, _ = chain_family(12)
    return db


class TestRewriteShape:
    def test_recursive_rules_are_guarded(self, chain):
        rules = normalize_program(desc_rules())
        rewrite = rewrite_for_query(
            chain, rules, query_to_atoms("c2[desc ->> {Y}]"))
        assert len(rewrite.rewritten) == 2
        assert all(entry.adornment == "bf" for entry in rewrite.rewritten)
        assert len(rewrite.seeds) == 1
        assert magic_name(("set", "desc"), "bf") in str(rewrite.seeds[0])
        assert ANCHOR in str(rewrite.seeds[0])
        assert not rewrite.fallbacks

    def test_guard_is_first_body_atom(self, chain):
        rules = normalize_program(desc_rules())
        rewrite = rewrite_for_query(
            chain, rules, query_to_atoms("c2[desc ->> {Y}]"))
        for entry in rewrite.rewritten:
            guard = entry.variant.body[0]
            assert guard.method.value.startswith(MAGIC_PREFIX)
            assert entry.variant.body[1:] == entry.source.body

    def test_result_bound_query_gets_fb_adornment(self, chain):
        rules = normalize_program(desc_rules())
        rewrite = rewrite_for_query(
            chain, rules, query_to_atoms("X[desc ->> {c5}]"))
        assert {entry.adornment for entry in rewrite.rewritten} == {"fb"}
        # The recursive rule propagates demand upward through a magic
        # rule seeded by the base `kids` edge.
        assert rewrite.magic_rules

    def test_unbound_query_read_falls_back_entirely(self, chain):
        rules = normalize_program(desc_rules())
        rewrite = rewrite_for_query(
            chain, rules, query_to_atoms("X[desc ->> {Y}]"))
        assert not rewrite.rewritten
        assert len(rewrite.fallbacks) == 2
        assert any("no bound position" in reason
                   for _, reason in rewrite.fallbacks)

    def test_unreachable_rules_are_dropped(self, chain):
        program = parse_program("""
            X[desc ->> {Y}] <- X[kids ->> {Y}].
            X[other -> 1] <- X[age -> 30].
        """)
        rewrite = rewrite_for_query(
            chain, normalize_program(program),
            query_to_atoms("c2[desc ->> {Y}]"))
        assert rewrite.dropped == 1
        assert len(rewrite.rewritten) == 1


class TestFallbackReasons:
    def test_negation_in_body_falls_back(self, chain):
        program = parse_program("""
            X[quiet -> yes] <- X : person, not X[kids ->> {K}].
        """)
        rewrite = rewrite_for_query(
            chain, normalize_program(program),
            query_to_atoms("c3[quiet -> F]"))
        assert not rewrite.rewritten
        assert any("negation" in reason for _, reason in rewrite.fallbacks)

    def test_pred_read_under_negation_is_evaluated_in_full(self, chain):
        program = parse_program("""
            X[busy -> yes] <- X[kids ->> {K}].
            X[quiet -> yes] <- X : person, not X[busy -> yes].
        """)
        rewrite = rewrite_for_query(
            chain, normalize_program(program),
            query_to_atoms("c3[quiet -> F], c0[busy -> B]"))
        reasons = dict(rewrite.fallbacks)
        assert any("negation" in reason or "superset" in reason
                   for reason in reasons.values())
        assert not rewrite.rewritten  # busy must be complete for `not`

    def test_virtual_creating_head_falls_back(self, chain):
        program = parse_program("""
            X.eldest[of -> X] <- X[kids ->> {Y}].
        """)
        rewrite = rewrite_for_query(
            chain, normalize_program(program),
            query_to_atoms("c0.eldest[of -> Z]"))
        assert not rewrite.rewritten
        assert rewrite.fallbacks

    def test_generic_method_rules_fall_back(self, chain):
        from repro.datasets.genealogy import generic_tc_rules

        rewrite = rewrite_for_query(
            chain, normalize_program(generic_tc_rules()),
            query_to_atoms("c0..(kids.tc)[self -> Y]"))
        # Generic-method heads define a computed method object (and the
        # hoisted `tc` path): nothing can be guarded by name.
        assert not rewrite.rewritten
        assert len(rewrite.fallbacks) == 2


class TestParity:
    PROGRAMS = (
        # specialised transitive closure, both directions
        ("""X[desc ->> {Y}] <- X[kids ->> {Y}].
            X[desc ->> {Y}] <- X[desc ->> {Z}], Z[kids ->> {Y}].""",
         ("c2[desc ->> {Y}]", "X[desc ->> {c5}]", "c3[desc ->> {c8}]",
          "X[desc ->> {Y}], Y[kids ->> {c4}]")),
        # mixed base/derived joins with a scalar head
        ("""X[reach -> c0] <- X[kids ->> {K}].
            X[deep ->> {Y}] <- X[kids ->> {Y}], Y[kids ->> {Z}].""",
         ("c1[reach -> R]", "X[deep ->> {c4}]", "c2[deep ->> {Y}]")),
        # fallback interplay: negation forces full evaluation of `busy`
        ("""X[busy -> yes] <- X[kids ->> {K}].
            X[quiet -> yes] <- X : person, not X[busy -> yes].
            X[desc ->> {Y}] <- X[kids ->> {Y}].
            X[desc ->> {Y}] <- X[desc ->> {Z}], Z[kids ->> {Y}].""",
         ("c2[desc ->> {Y}], c2[busy -> B]", "X[quiet -> Q]")),
    )

    @pytest.mark.parametrize("case", range(len(PROGRAMS)))
    def test_magic_equals_full_evaluation(self, chain, case):
        text, queries = self.PROGRAMS[case]
        program = parse_program(text)
        full = Engine(chain, program).run()
        for query in queries:
            expected = answers(full, query)
            engine = DemandEngine(chain, program, query)
            got = answers(engine.run(), query)
            assert got == expected, query

    def test_no_program_facts_leak_into_the_source_db(self, chain):
        before = len(chain.sets)
        DemandEngine(chain, desc_rules(), "c2[desc ->> {Y}]").run()
        assert len(chain.sets) == before

    def test_demand_derives_strictly_less(self, chain):
        program = desc_rules()
        full = Engine(chain, program)
        full.run()
        demand = DemandEngine(chain, program, "c9[desc ->> {Y}]")
        demand.run()
        assert demand.stats.derived_total < full.stats.derived_total


class TestDemandEngineSurface:
    def test_stats_count_seeds_and_rewrites(self, chain):
        engine = DemandEngine(chain, desc_rules(), "c2[desc ->> {Y}]")
        engine.run()
        assert engine.stats.magic_seeds == 1
        assert engine.stats.rules_rewritten == 2
        assert engine.stats.rules_fallback == 0
        row = engine.stats.as_row()
        assert row["magic-seeds"] == 1
        assert row["rules-rewritten"] == 2

    def test_for_query_entry_point(self, chain):
        engine = Engine.for_query(chain, desc_rules(), "c2[desc ->> {Y}]")
        assert isinstance(engine, DemandEngine)
        result = engine.run()
        assert answers(result, "c2[desc ->> {Y}]")

    def test_magic_false_is_the_full_fixpoint(self, chain):
        engine = Engine.for_query(chain, desc_rules(), "c2[desc ->> {Y}]",
                                  magic=False)
        engine.run()
        assert engine.rewrite is None
        assert engine.stats.magic_seeds == 0
        full = Engine(chain, desc_rules())
        full.run()
        assert engine.stats.derived_total == full.stats.derived_total

    def test_explain_names_adornments_and_demand(self, chain):
        engine = DemandEngine(chain, desc_rules(), "c2[desc ->> {Y}]")
        engine.run()
        text = engine.explain()
        assert "demand:" in text
        assert "rewritten (2)" in text
        assert "adorn" in text
        assert "magic" in text

    def test_demand_report_without_magic_is_none(self, chain):
        engine = DemandEngine(chain, desc_rules(), "c2[desc ->> {Y}]",
                              magic=False)
        assert engine.demand_report() is None


class TestStratifiedInteraction:
    def test_head_inclusion_desugars_and_stays_rewritable(self):
        # A head superset (paper (4.4)) hoists into a plain body
        # membership during normalisation, so the rule *is* guardable.
        db = Database()
        db.add_object("p1", classes=["person"], sets={"kids": ["c1"]})
        db.add_object("c1", classes=["person"], sets={"kids": ["g1"]})
        db.add_object("g1", classes=["person"])
        program = parse_program("""
            X[desc ->> {Y}] <- X[kids ->> {Y}].
            X[desc ->> {Y}] <- X[desc ->> {Z}], Z[kids ->> {Y}].
            X[copies ->> X..desc] <- X : person.
        """)
        query = "p1[copies ->> {Y}]"
        rewrite = rewrite_for_query(db, normalize_program(program),
                                    query_to_atoms(query))
        assert rewrite.rewritten
        full = Engine(db, program).run()
        got = DemandEngine(db, program, query).run()
        assert answers(got, query) == answers(full, query)

    def test_body_superset_source_forces_full_evaluation(self):
        db = Database()
        db.add_object("p1", classes=["person"], sets={"kids": ["c1"]})
        db.add_object("c1", classes=["person"])
        program = parse_program("""
            X[desc ->> {Y}] <- X[kids ->> {Y}].
            X[clan -> yes] <- X[kids ->> p1..desc].
        """)
        query = "X[clan -> F], p1[desc ->> {D}]"
        rewrite = rewrite_for_query(db, normalize_program(program),
                                    query_to_atoms(query))
        # `desc` feeds a body superset source: it must be complete, so
        # neither its rule nor the superset rule can be guarded.
        assert not rewrite.rewritten
        reasons = " / ".join(reason for _, reason in rewrite.fallbacks)
        assert "superset" in reasons
        full = Engine(db, program).run()
        got = DemandEngine(db, program, query).run()
        assert answers(got, query) == answers(full, query)


class TestMagicInvisibility:
    """Demand bookkeeping must never leak into answers (hidden tables)."""

    @pytest.fixture
    def leak_db(self):
        db = Database()
        db.add_object("p1", sets={"kids": ["c1"]})
        db.add_object("c1")
        return db

    LEAK_PROGRAM = """
        X[busy -> yes] <- X[kids ->> {K}].
        X[near ->> {Y}] <- X[kids ->> {Y}].
    """

    def test_variable_method_reads_do_not_see_magic_facts(self, leak_db):
        program = parse_program(self.LEAK_PROGRAM)
        # A scalar demand materialises *set*-kind magic facts; the
        # wildcard set read must not enumerate them.
        query = "p1[busy -> B], X[M ->> {S}]"
        full = answers(Engine(leak_db, program).run(), query)
        got = answers(DemandEngine(leak_db, program, query).run(), query)
        assert got == full
        assert all(not str(row).count(MAGIC_PREFIX) for row in got)

    def test_subject_probe_does_not_see_bb_magic_facts(self, leak_db):
        program = parse_program(self.LEAK_PROGRAM)
        # bb adornments store magic facts on *user* objects; the
        # bound-subject wildcard probe must skip them.
        query = "p1[busy -> yes], p1[M ->> {S}]"
        full = answers(Engine(leak_db, program).run(), query)
        got = answers(DemandEngine(leak_db, program, query).run(), query)
        assert got == full

    def test_interpreted_executor_hides_magic_facts_too(self, leak_db):
        program = parse_program(self.LEAK_PROGRAM)
        query = "p1[busy -> B], X[M ->> {S}]"
        full = answers(Engine(leak_db, program).run(), query)
        engine = DemandEngine(leak_db, program, query, compiled=False)
        assert answers(engine.run(), query) == full

    def test_guards_still_match_their_magic_facts_unindexed(self):
        # Explicitly named magic methods stay visible: guards on an
        # index-free database go through the filtered-scan kernels.
        db = Database(indexed=False)
        db.add_object("p1", sets={"kids": ["c1"]})
        db.add_object("c1", sets={"kids": ["g1"]})
        db.add_object("g1")
        full = Engine(db, desc_rules()).run()
        got = DemandEngine(db, desc_rules(), "p1[desc ->> {Y}]").run()
        query = "p1[desc ->> {Y}]"
        assert answers(got, query) == answers(full, query)
        assert answers(got, query)  # non-empty: the guards did fire


class TestUniverseDependence:
    def test_vacuous_superset_query_forces_total_fallback(self):
        db = Database()
        db.add_object("p1", sets={"kids": ["c1"]})
        db.add_object("c1")
        program = parse_program("""
            X[desc ->> {Y}] <- X[kids ->> {Y}].
            X[desc ->> {Y}] <- X[desc ->> {Z}], Z[kids ->> {Y}].
        """)
        # `X[kids ->> c9..kids]` has an unbound subject over a (here
        # vacuous) source: it quantifies over the universe itself.
        query = "p1[desc ->> {D}], X[kids ->> c9..kids]"
        rewrite = rewrite_for_query(db, normalize_program(program),
                                    query_to_atoms(query))
        assert rewrite.total_fallback
        assert rewrite.dropped == 0
        full = Engine(db, program).run()
        got = DemandEngine(db, program, query).run()
        assert answers(got, query) == answers(full, query)

    def test_unbound_self_query_forces_total_fallback(self, chain):
        query = "c2[desc ->> {D}], X[self -> Y]"
        rewrite = rewrite_for_query(chain,
                                    normalize_program(desc_rules()),
                                    query_to_atoms(query))
        assert rewrite.total_fallback
        full = Engine(chain, desc_rules()).run()
        got = DemandEngine(chain, desc_rules(), query).run()
        assert answers(got, query) == answers(full, query)

    def test_bound_superset_keeps_the_rewrite(self, chain):
        # All superset variables grounded by data atoms: no universe
        # quantification, demand stays on.
        query = "c2[desc ->> {D}], c2[kids ->> c2..kids]"
        rewrite = rewrite_for_query(chain,
                                    normalize_program(desc_rules()),
                                    query_to_atoms(query))
        assert not rewrite.total_fallback
        assert rewrite.rewritten
