"""Signature and type-checking tests."""

import pytest

from repro.core.signatures import SignatureSet
from repro.oodb.database import Database
from repro.oodb.oid import NamedOid, VirtualOid


def n(value):
    return NamedOid(value)


@pytest.fixture
def db():
    db = Database()
    db.subclass("manager", "employee")
    db.subclass("automobile", "vehicle")
    db.add_object("p1", classes=["employee"], scalars={"age": 30},
                  sets={"vehicles": ["car1"]})
    db.add_object("car1", classes=["automobile"])
    return db


@pytest.fixture
def sigs():
    sigs = SignatureSet()
    sigs.declare_scalar("employee", "age", (), "integer")
    sigs.declare_set("employee", "vehicles", (), "vehicle")
    return sigs


class TestChecking:
    def test_well_typed_database(self, db, sigs):
        assert sigs.check_database(db) == []

    def test_scalar_result_violation(self, db, sigs):
        db.add_object("p1", scalars={"height": 1})
        db.assert_scalar(n("age"), n("p2"), (), n("thirty"))
        db.assert_isa(n("p2"), n("employee"))
        violations = sigs.check_database(db)
        assert len(violations) == 1
        assert "thirty" in str(violations[0])

    def test_set_member_violation(self, db, sigs):
        db.add_object("p1", sets={"vehicles": ["banana"]})
        violations = sigs.check_database(db)
        assert any("banana" in str(v) for v in violations)

    def test_inherited_signatures_apply_to_subclasses(self, db, sigs):
        db.add_object("boss1", classes=["manager"], scalars={"age": "old"})
        violations = sigs.check_database(db)
        assert any("old" in str(v) for v in violations)

    def test_signatures_ignore_other_classes(self, db, sigs):
        db.add_object("rock1", classes=["mineral"], scalars={"age": "old"})
        assert sigs.check_database(db) == []

    def test_strict_mode_requires_declarations(self, db, sigs):
        db.add_object("p1", scalars={"nickname": "ace"})
        relaxed = sigs.check_database(db)
        strict = sigs.check_database(db, strict=True)
        assert relaxed == []
        assert any("no signature" in str(v) for v in strict)

    def test_argument_classes_checked(self, db):
        sigs = SignatureSet()
        sigs.declare_scalar("employee", "salary", ("integer",), "integer")
        db.assert_scalar(n("salary"), n("p1"), (n("notayear"),), n(100))
        violations = sigs.check_database(db)
        assert any("argument" in str(v) for v in violations)

    def test_arity_mismatch_means_inapplicable(self, db):
        sigs = SignatureSet()
        sigs.declare_scalar("employee", "salary", ("integer",), "integer")
        db.assert_scalar(n("salary"), n("p1"), (), n("lots"))
        assert sigs.check_database(db) == []


class TestVirtualTyping:
    def test_type_virtual_objects(self, db):
        sigs = SignatureSet()
        sigs.declare_scalar("employee", "address", (), "addressObj")
        virtual = VirtualOid(n("address"), n("p1"))
        db.assert_scalar(n("address"), n("p1"), (), virtual)
        added = sigs.type_virtual_objects(db)
        assert added == 1
        assert db.isa(virtual, n("addressObj"))
        # idempotent
        assert sigs.type_virtual_objects(db) == 0

    def test_set_members_typed(self, db):
        sigs = SignatureSet()
        sigs.declare_set("employee", "vehicles", (), "vehicle")
        db.add_object("p1", sets={"vehicles": ["mystery"]})
        added = sigs.type_virtual_objects(db)
        assert added == 1
        assert db.isa(n("mystery"), n("vehicle"))


class TestDeclarationApi:
    def test_iteration_and_len(self, sigs):
        assert len(sigs) == 2
        rendered = [str(s) for s in sigs]
        assert any("=>>" in r for r in rendered)
        assert any("=> integer" in r for r in rendered)
