"""Base change-log trimming: absolute cursors and the low-water mark."""

import pytest

from repro.oodb.database import ChangeLog, Database, TrimmedCursor
from repro.oodb.oid import NamedOid
from repro.lang.parser import parse_program
from repro.query import Query


def n(value):
    return NamedOid(value)


@pytest.fixture
def db():
    db = Database()
    db.add_object("p1", sets={"kids": ["c1", "c2"]})
    db.add_object("p2", sets={"kids": ["c3"]})
    return db


class TestAbsoluteCursors:
    def test_cursor_and_since_survive_trimming(self, db):
        log = db.begin_changes()
        db.assert_set_member(n("kids"), n("p1"), (), n("x1"))
        db.assert_set_member(n("kids"), n("p1"), (), n("x2"))
        db.assert_set_member(n("kids"), n("p1"), (), n("x3"))
        assert log.cursor() == 3
        assert log.trim_to(2) == 2
        assert log.offset == 2
        assert log.cursor() == 3
        # The absolute cursor 2 still addresses the surviving entry.
        assert log.since(2) == [
            ("+", ("set", n("kids"), n("p1"), (), n("x3")))]
        assert log.since(3) == []

    def test_in_sync_is_arithmetic_over_absolute_cursors(self, db):
        version = db.data_version()
        log = db.begin_changes()
        db.assert_set_member(n("kids"), n("p1"), (), n("x1"))
        db.assert_set_member(n("kids"), n("p1"), (), n("x2"))
        log.trim_to(1)
        # Trimming drops entries, never the proof: cursor 2 still
        # explains exactly two bumps past the start version.
        assert log.in_sync(version + 2, 2)
        assert not log.in_sync(version + 2, 1)

    def test_trim_to_never_drops_past_the_end(self):
        log = ChangeLog(0)
        log.record("+", ("isa", n("a"), n("b")))
        assert log.trim_to(99) == 1
        assert log.offset == 1
        assert log.cursor() == 1

    def test_since_below_the_trimmed_prefix_raises(self, db):
        # An unregistered consumer must fail loudly, not apply an
        # incomplete delta: entries below the offset are gone.
        log = db.begin_changes()
        db.assert_set_member(n("kids"), n("p1"), (), n("x1"))
        db.assert_set_member(n("kids"), n("p1"), (), n("x2"))
        log.trim_to(1)
        with pytest.raises(ValueError, match="hold_changes"):
            log.since(0)
        assert len(log.since(1)) == 1


class TestTrimmedCursorIsTyped:
    """The replication boundary needs a *typed* trimmed-past read
    (satellite: a subscriber below the horizon gets a retryable
    "resync required" answer, not a bare ValueError)."""

    def test_since_raises_trimmed_cursor_with_the_arithmetic(self, db):
        log = db.begin_changes()
        db.assert_set_member(n("kids"), n("p1"), (), n("x1"))
        db.assert_set_member(n("kids"), n("p1"), (), n("x2"))
        db.assert_set_member(n("kids"), n("p1"), (), n("x3"))
        log.trim_to(2)
        with pytest.raises(TrimmedCursor) as exc_info:
            log.since(1)
        err = exc_info.value
        # The exception carries the resync arithmetic: how far below
        # the horizon the subscriber fell.
        assert err.cursor == 1
        assert err.offset == 2
        assert isinstance(err, ValueError)  # the historical contract

    def test_reattach_at_the_horizon_needs_no_resync(self, db):
        """Trim/reattach arithmetic: the offset itself is the lowest
        incrementally-servable cursor -- a subscriber exactly at the
        horizon resumes; one below it resyncs."""
        log = db.begin_changes()
        for i in range(5):
            db.assert_set_member(n("kids"), n("p1"), (), n(f"x{i}"))
        log.trim_to(3)
        assert log.offset == 3
        # At the horizon: the surviving suffix is the complete delta.
        assert [f for _, f in log.since(3)] == [
            ("set", n("kids"), n("p1"), (), n("x3")),
            ("set", n("kids"), n("p1"), (), n("x4"))]
        # One below: gone, typed.
        with pytest.raises(TrimmedCursor):
            log.since(2)
        # ``in_sync`` stays provable even for trimmed cursors (it is
        # pure arithmetic), so a resynced subscriber can still verify
        # the version/cursor pair it bootstrapped at.
        assert log.in_sync(db.data_version(), log.cursor())

    def test_a_held_subscriber_cursor_never_trims_past(self, db):
        """The hub's lease discipline in miniature: a registered
        cursor is the low-water mark, so ``since`` at it always
        succeeds no matter how often trimming runs."""
        log = db.begin_changes()
        with db.held_changes(cursor=0) as lease:
            for i in range(4):
                db.assert_set_member(n("kids"), n("p1"), (), n(f"x{i}"))
                db.catalog()
                db.trim_changes()
                assert len(log.since(lease.cursor)) == i + 1
            lease.move(3)
            db.catalog()
            db.trim_changes()
            assert log.offset == 3
            assert len(log.since(3)) == 1
            with pytest.raises(TrimmedCursor):
                log.since(2)


class TestLowWaterMark:
    def test_trim_respects_held_cursors(self, db):
        class Holder:
            pass

        log = db.begin_changes()
        holder = Holder()
        db.assert_set_member(n("kids"), n("p1"), (), n("x1"))
        db.assert_set_member(n("kids"), n("p1"), (), n("x2"))
        db.hold_changes(holder, 1)
        db.catalog()  # catalog replays to cursor 2
        assert db.trim_changes() == 1  # only below the held cursor
        assert log.offset == 1
        db.hold_changes(holder, 2)
        assert db.trim_changes() == 1
        assert log.offset == 2

    def test_release_unpins_the_log(self, db):
        class Holder:
            pass

        log = db.begin_changes()
        holder = Holder()
        db.assert_set_member(n("kids"), n("p1"), (), n("x1"))
        db.hold_changes(holder, 0)
        db.catalog()
        assert db.trim_changes() == 0
        db.release_changes(holder)
        assert db.trim_changes() == 1
        assert log.entries == []

    def test_dead_holders_stop_pinning(self, db):
        class Holder:
            pass

        db.begin_changes()
        holder = Holder()
        db.assert_set_member(n("kids"), n("p1"), (), n("x1"))
        db.hold_changes(holder, 0)
        db.catalog()
        del holder  # weak registry: collection releases the hold
        assert db.trim_changes() == 1

    def test_new_log_clears_stale_holds(self, db):
        class Holder:
            pass

        holder = Holder()
        log = db.begin_changes()
        db.hold_changes(holder, 0)
        log.disrupt("test")
        replacement = db.begin_changes()
        assert replacement is not log
        db.assert_set_member(n("kids"), n("p1"), (), n("x1"))
        db.catalog()
        # The stale cursor referred to the dead log; it must not pin
        # the replacement.
        assert db.trim_changes() == 1


class TestQueryKeepsTheBaseLogBounded:
    PROGRAM = parse_program("X[d1 ->> {Y}] <- X[kids ->> {Y}].")

    def test_log_stops_growing_under_repeated_maintain_cycles(self, db):
        log = db.begin_changes()
        query = Query(db, program=self.PROGRAM)
        assert query.count("p1[d1 ->> {Y}]") == 2
        peak = 0
        for cycle in range(25):
            member = n(f"m{cycle}")
            db.assert_set_member(n("kids"), n("p1"), (), member)
            assert query.count("p1[d1 ->> {Y}]") == 3
            assert query.last_maintenance is not None
            assert query.last_maintenance.applied
            db.retract_set_member(n("kids"), n("p1"), (), member)
            assert query.count("p1[d1 ->> {Y}]") == 2
            peak = max(peak, len(log.entries))
        # Every maintain cycle consumed its slice and advanced the
        # low-water mark: the retained log stays a small constant, not
        # O(total mutations).
        assert len(log.entries) <= 2
        assert peak <= 4
        assert log.offset == log.cursor() - len(log.entries) > 0

    def test_a_lagging_query_pins_then_releases_the_log(self, db):
        log = db.begin_changes()
        fast = Query(db, program=self.PROGRAM)
        slow = Query(db, program=self.PROGRAM)
        assert fast.count("p1[d1 ->> {Y}]") == 2
        assert slow.count("p2[d1 ->> {Y}]") == 1
        slow_cursor = log.cursor()
        for cycle in range(6):
            db.assert_set_member(n("kids"), n("p1"), (), n(f"f{cycle}"))
            assert fast.count("p1[d1 ->> {Y}]") == 3 + cycle
        # ``slow`` has not looked since its registration: its cursor
        # pins the log even though ``fast`` is fully caught up.
        assert log.offset <= slow_cursor
        assert len(log.entries) >= 6
        # Once the lagging consumer catches up, its next maintained
        # query releases everything it was holding.
        assert slow.count("p2[d1 ->> {Y}]") == 1
        assert len(log.entries) == 0
        assert log.offset == log.cursor()


class TestChangeLease:
    """The exception-safe snapshot-lease API (Database.held_changes)."""

    def test_lease_pins_then_releases_on_exit(self, db):
        log = db.begin_changes()
        db.assert_set_member(n("kids"), n("p1"), (), n("x1"))
        with db.held_changes() as lease:
            assert lease.cursor == 1
            db.assert_set_member(n("kids"), n("p1"), (), n("x2"))
            assert db.trim_changes() == 1   # only below the lease
            assert log.offset == 1
        assert db.trim_changes() == 1       # lease gone: all reclaimed
        assert log.offset == log.cursor() == 2

    def test_reader_dying_mid_query_never_leaks_its_hold(self, db):
        log = db.begin_changes()
        db.assert_set_member(n("kids"), n("p1"), (), n("x1"))

        def doomed_reader():
            with db.held_changes():
                raise RuntimeError("reader crashed mid-query")

        with pytest.raises(RuntimeError):
            doomed_reader()
        db.assert_set_member(n("kids"), n("p1"), (), n("x2"))
        assert db.trim_changes() == 2
        assert log.offset == log.cursor()   # fully trimmable again

    def test_dropping_an_unreleased_lease_unpins(self, db):
        log = db.begin_changes()
        lease = db.held_changes()           # pins at cursor 0
        db.assert_set_member(n("kids"), n("p1"), (), n("x1"))
        assert db.trim_changes() == 0
        del lease                           # weakly-held: GC releases
        assert db.trim_changes() == 1
        assert log.offset == log.cursor()

    def test_lease_without_a_log_is_inert(self, db):
        with db.held_changes() as lease:
            assert lease.cursor is None
        lease.release()                     # idempotent, no log: no-op

    def test_move_advances_the_low_water_mark(self, db):
        log = db.begin_changes()
        db.assert_set_member(n("kids"), n("p1"), (), n("x1"))
        lease = db.held_changes()
        db.assert_set_member(n("kids"), n("p1"), (), n("x2"))
        assert db.trim_changes() == 1
        lease.move(log.cursor())
        assert db.trim_changes() == 1
        lease.release()
        with pytest.raises(ValueError):
            lease.move(0)                   # released leases stay dead

    def test_snapshot_lag_tracks_slowest_lease(self, db):
        log = db.begin_changes()
        assert db.snapshot_lag() == 0
        lease = db.held_changes()
        db.assert_set_member(n("kids"), n("p1"), (), n("x1"))
        db.assert_set_member(n("kids"), n("p1"), (), n("x2"))
        assert db.snapshot_lag() == 2
        lease.move(log.cursor())
        assert db.snapshot_lag() == 0
        lease.release()
        assert db.snapshot_lag() == 0

    def test_query_memo_hold_is_a_lease_and_releases_on_eviction(self, db):
        log = db.begin_changes()
        program = parse_program("X[d1 ->> {Y}] <- X[kids ->> {Y}].")
        query = Query(db, program=program)
        assert query.count("p1[d1 ->> {Y}]") == 2
        assert query._hold is not None and not query._hold.released
        db.assert_set_member(n("kids"), n("p1"), (), n("x1"))
        # Dropping every memo releases the hold: log fully trimmable.
        assert query.forget() >= 1
        assert query._hold is None or query._hold.released \
            or query._hold.cursor == log.cursor()
        db.trim_changes()
        assert log.offset == log.cursor()
