"""Dataset generator tests: determinism, shape, paper anchors."""

import networkx as nx

from repro.datasets import (
    CompanyConfig,
    build_company,
    build_family,
    build_university,
)
from repro.datasets.genealogy import chain_family, closure_edges
from repro.oodb.oid import NamedOid
from repro.oodb.serialize import dumps
from repro.query import Query


def n(value):
    return NamedOid(value)


class TestCompany:
    def test_deterministic_for_seed(self):
        a = build_company(CompanyConfig(employees=20, seed=5))
        b = build_company(CompanyConfig(employees=20, seed=5))
        assert dumps(a) == dumps(b)

    def test_different_seeds_differ(self):
        a = build_company(CompanyConfig(employees=20, seed=5))
        b = build_company(CompanyConfig(employees=20, seed=6))
        assert dumps(a) != dumps(b)

    def test_shape(self):
        db = build_company(CompanyConfig(employees=20, manager_ratio=0.25))
        q = Query(db)
        assert q.count("X : employee") >= 20
        assert q.count("X : manager") >= 5
        assert q.ask("X : automobile[cylinders -> 4]")

    def test_golden_anchor_for_section2_query(self):
        db = build_company(CompanyConfig(employees=10, seed=99))
        rows = Query(db).all(
            "X : manager..vehicles[color -> red]"
            ".producedBy[city -> detroit; president -> X]",
            variables=["X"],
        )
        assert any(r.value("X") == "p0" for r in rows)

    def test_scaling(self):
        small = build_company(CompanyConfig(employees=10))
        large = build_company(CompanyConfig(employees=40))
        assert len(large) > len(small)


class TestGenealogy:
    def test_graph_matches_database(self):
        db, graph = build_family(generations=5, branching=2, seed=1)
        for parent, child in graph.edges():
            assert n(child) in db.set_apply(n("kids"), n(parent))
        memberships = sum(
            len(db.set_apply(n("kids"), n(node))) for node in graph.nodes()
        )
        assert memberships == graph.number_of_edges()

    def test_tree_has_requested_depth(self):
        _, graph = build_family(generations=5, branching=2, seed=1)
        root = "f0_0_0"
        assert nx.dag_longest_path_length(graph) == 4

    def test_chain(self):
        db, graph = chain_family(10)
        assert graph.number_of_edges() == 9
        assert len(closure_edges(graph)) == 9 * 10 // 2

    def test_deterministic(self):
        a, _ = build_family(seed=7)
        b, _ = build_family(seed=7)
        assert dumps(a) == dumps(b)


class TestUniversity:
    def test_shape(self):
        db = build_university(courses=6, students=10, teachers=3)
        q = Query(db)
        assert q.count("X : course") == 6
        assert q.count("X : student") == 10
        assert q.ask("T : teacher[salary@(1994) -> S]")
        assert q.ask("S : student[grade@(C) -> G]")

    def test_prereqs_are_acyclic(self):
        db = build_university(courses=10, seed=2)
        graph = nx.DiGraph()
        for (method, subject, _), members in db.sets.items():
            if method == n("prereq"):
                for member in members:
                    graph.add_edge(subject.value, member.value)
        assert nx.is_directed_acyclic_graph(graph)

    def test_deterministic(self):
        assert dumps(build_university(seed=3)) == dumps(build_university(seed=3))
