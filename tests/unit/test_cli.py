"""CLI tests: programs, queries, snapshots, errors."""

import io

import pytest

from repro.cli import run

PROGRAM = """
    p1 : employee. p1[age -> 30]. p1[worksFor -> cs1].
    p2 : employee. p2[age -> 70].
    X[senior -> yes] <- X : employee, X.age >= 65.
    X.boss[worksFor -> D] <- X : employee[worksFor -> D].
"""


@pytest.fixture
def program_file(tmp_path):
    path = tmp_path / "program.plog"
    path.write_text(PROGRAM)
    return path


def invoke(*argv):
    out = io.StringIO()
    code = run([str(a) for a in argv], out=out)
    return code, out.getvalue()


class TestEvaluation:
    def test_query_answers(self, program_file):
        code, output = invoke(program_file, "--query", "X[senior -> yes]")
        assert code == 0
        assert "X=p2" in output
        assert "X=p1" not in output

    def test_virtual_objects_render(self, program_file):
        code, output = invoke(program_file, "--query",
                              "p1.boss[worksFor -> D]")
        assert code == 0
        assert "D=cs1" in output

    def test_boolean_query_yes_no(self, program_file):
        code, output = invoke(program_file, "--query", "p1 : employee",
                              "--query", "p1 : manager")
        assert code == 0
        assert "yes" in output
        assert "no" in output

    def test_stats(self, program_file):
        code, output = invoke(program_file, "--stats")
        assert code == 0
        assert "stats derived:" in output

    def test_naive_flag(self, program_file):
        code, _ = invoke(program_file, "--naive",
                         "--query", "X[senior -> yes]")
        assert code == 0


class TestSnapshots:
    def test_dump_and_reload(self, program_file, tmp_path):
        snapshot = tmp_path / "db.json"
        code, output = invoke(program_file, "--dump", snapshot)
        assert code == 0
        assert snapshot.exists()
        code, output = invoke("--db", snapshot,
                              "--query", "X[senior -> yes]")
        assert code == 0
        assert "X=p2" in output


class TestErrors:
    def test_no_input(self):
        code, output = invoke()
        assert code == 2
        assert "need a program" in output

    def test_syntax_error_reported(self, tmp_path):
        bad = tmp_path / "bad.plog"
        bad.write_text("p1[a -> .")
        code, output = invoke(bad)
        assert code == 1
        assert "error:" in output

    def test_missing_file(self, tmp_path):
        code, output = invoke(tmp_path / "absent.plog")
        assert code == 1
        assert "error:" in output

    def test_bad_query(self, program_file):
        code, output = invoke(program_file, "--query", "p1[")
        assert code == 1
        assert "error:" in output
