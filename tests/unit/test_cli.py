"""CLI tests: programs, queries, snapshots, EXPLAIN, errors."""

import io

import pytest

from repro.cli import run

PROGRAM = """
    p1 : employee. p1[age -> 30]. p1[worksFor -> cs1].
    p2 : employee. p2[age -> 70].
    X[senior -> yes] <- X : employee, X.age >= 65.
    X.boss[worksFor -> D] <- X : employee[worksFor -> D].
"""


@pytest.fixture
def program_file(tmp_path):
    path = tmp_path / "program.plog"
    path.write_text(PROGRAM)
    return path


def invoke(*argv):
    out = io.StringIO()
    code = run([str(a) for a in argv], out=out)
    return code, out.getvalue()


class TestEvaluation:
    def test_query_answers(self, program_file):
        code, output = invoke(program_file, "--query", "X[senior -> yes]")
        assert code == 0
        assert "X=p2" in output
        assert "X=p1" not in output

    def test_virtual_objects_render(self, program_file):
        code, output = invoke(program_file, "--query",
                              "p1.boss[worksFor -> D]")
        assert code == 0
        assert "D=cs1" in output

    def test_boolean_query_yes_no(self, program_file):
        code, output = invoke(program_file, "--query", "p1 : employee",
                              "--query", "p1 : manager")
        assert code == 0
        assert "yes" in output
        assert "no" in output

    def test_stats(self, program_file):
        code, output = invoke(program_file, "--stats")
        assert code == 0
        assert "stats derived:" in output

    def test_naive_flag(self, program_file):
        code, _ = invoke(program_file, "--naive",
                         "--query", "X[senior -> yes]")
        assert code == 0

    def test_executor_flag_answers_and_stats(self, program_file):
        expected = invoke(program_file, "--query", "X[senior -> yes]")[1]
        for executor in ("columnar", "batch", "compiled", "interpreted"):
            code, output = invoke(program_file, "--executor", executor,
                                  "--query", "X[senior -> yes]")
            assert code == 0
            assert output == expected
        code, output = invoke(program_file, "--executor", "batch",
                              "--stats")
        assert code == 0
        assert "stats batches:" in output
        code, output = invoke(program_file, "--executor", "interpreted",
                              "--stats")
        assert code == 0
        assert "stats batches: 0" in output

    def test_executor_flag_on_explain_subcommand(self, program_file):
        code, output = invoke("explain", "X[senior -> yes]",
                              "--program", program_file,
                              "--executor", "batch")
        assert code == 0
        assert "batch" in output


class TestSnapshots:
    def test_dump_and_reload(self, program_file, tmp_path):
        snapshot = tmp_path / "db.json"
        code, output = invoke(program_file, "--dump", snapshot)
        assert code == 0
        assert snapshot.exists()
        code, output = invoke("--db", snapshot,
                              "--query", "X[senior -> yes]")
        assert code == 0
        assert "X=p2" in output


EXPLAIN_PROGRAM = """
    car1 : automobile. car1[color -> red]. car1[cylinders -> 4].
    car2 : automobile. car2[color -> blue]. car2[cylinders -> 6].
    p1 : employee. p1[vehicles ->> {car1}]. p1[vehicles ->> {car2}].
    p2 : employee. p2[vehicles ->> {car2}].
"""

#: The exact plan for the snapshot program: the planner starts from the
#: one-entry (color, red) index bucket, walks the member index back to
#: the owner (a merge join when the member column is batched -- the
#: ``(merge)`` access-path suffix), then checks the class; the kernel
#: column names the compiled form of each step.  Pinned as a rendering
#: snapshot.
EXPLAIN_SNAPSHOT = """\
plan: X : employee..vehicles[color -> red]
#  atom                   access path                  kernel           est.rows  rows
-  ---------------------  ---------------------------  ---------------  --------  ----
1  _V1[color -> red]      method+result index          scalar mr-probe         1     1
2  X[vehicles ->> {_V1}]  method+member index (merge)  set mm-probe          1.5     1
3  X : employee           isa check                    isa check             0.5     1
estimated 0.8 rows; 1 bindings
"""

#: The same plan under ``--executor columnar``: int-mirror-served steps
#: carry ``int ...`` kernel labels (including the merge-join access
#: path of step 2), while the isa step -- which has no surrogate
#: mirror -- keeps its boxed ``batch ...`` fallback kernel.  Pinned as
#: a rendering snapshot.
COLUMNAR_EXPLAIN_SNAPSHOT = """\
plan: X : employee..vehicles[color -> red]
#  atom                   access path                  kernel                 est.rows  rows
-  ---------------------  ---------------------------  ---------------------  --------  ----
1  _V1[color -> red]      method+result index          int scalar mr-probe           1     1
2  X[vehicles ->> {_V1}]  method+member index (merge)  int set mm merge-join       1.5     1
3  X : employee           isa check                    batch isa check             0.5     1
estimated 0.8 rows; 1 bindings
"""


class TestExplain:
    @pytest.fixture
    def explain_program(self, tmp_path):
        path = tmp_path / "explain.plog"
        path.write_text(EXPLAIN_PROGRAM)
        return path

    def test_explain_snapshot(self, explain_program):
        code, output = invoke("explain",
                              "X : employee..vehicles[color -> red]",
                              "--program", explain_program)
        assert code == 0
        assert output == EXPLAIN_SNAPSHOT

    def test_explain_columnar_snapshot(self, explain_program):
        code, output = invoke("explain",
                              "X : employee..vehicles[color -> red]",
                              "--program", explain_program,
                              "--executor", "columnar")
        assert code == 0
        assert output == COLUMNAR_EXPLAIN_SNAPSHOT

    def test_engine_explain_names_magic_guard_kernels(self, tmp_path):
        # Under demand evaluation the rewritten rule bodies carry magic
        # guard atoms; the columnar lowering serves them from the int
        # mirror ("int set iter" seeds, "int set contains" checks), and
        # the adorn column marks the guard rows.
        path = tmp_path / "rec.plog"
        path.write_text("""
            n0[next -> n1]. n1[next -> n2].
            X[reach ->> {Y}] <- X[next -> Y].
            X[reach ->> {Z}] <- X[reach ->> {Y}], Y[next -> Z].
        """)
        code, output = invoke(path, "--magic", "--executor", "columnar",
                              "--explain", "--query", "n0[reach ->> {Y}]")
        assert code == 0
        assert "magic" in output
        assert "int set iter" in output
        assert "int set contains" in output

    def test_explain_without_analyze(self, explain_program):
        code, output = invoke("explain",
                              "X : employee..vehicles[color -> red]",
                              "--program", explain_program, "--no-analyze")
        assert code == 0
        assert "est.rows" in output
        assert "bindings" not in output

    def test_explain_against_snapshot_db(self, explain_program, tmp_path):
        snapshot = tmp_path / "db.json"
        code, _ = invoke(explain_program, "--dump", snapshot)
        assert code == 0
        code, output = invoke("explain", "X : employee", "--db", snapshot)
        assert code == 0
        assert "class extent" in output
        assert "2 bindings" in output

    def test_explain_without_database(self):
        code, output = invoke("explain", "X : employee")
        assert code == 0
        assert "0 bindings" in output

    def test_explain_bad_query(self, explain_program):
        code, output = invoke("explain", "p1[", "--program", explain_program)
        assert code == 1
        assert "error:" in output

    def test_engine_explain_flag(self, program_file):
        code, output = invoke(program_file, "--explain")
        assert code == 0
        assert "plan:" in output
        assert "access path" in output


class TestErrors:
    def test_no_input(self):
        code, output = invoke()
        assert code == 2
        assert "need a program" in output

    def test_syntax_error_reported(self, tmp_path):
        bad = tmp_path / "bad.plog"
        bad.write_text("p1[a -> .")
        code, output = invoke(bad)
        assert code == 1
        assert "error:" in output

    def test_missing_file(self, tmp_path):
        code, output = invoke(tmp_path / "absent.plog")
        assert code == 1
        assert "error:" in output

    def test_bad_query(self, program_file):
        code, output = invoke(program_file, "--query", "p1[")
        assert code == 1
        assert "error:" in output


MAGIC_PROGRAM = """
    p1 : person. c1 : person. g1 : person.
    p1[kids ->> {c1}]. c1[kids ->> {g1}].
    X[desc ->> {Y}] <- X[kids ->> {Y}].
    X[desc ->> {Y}] <- X[desc ->> {Z}], Z[kids ->> {Y}].
    X[busy -> yes] <- X[kids ->> {K}].
    X[idle -> yes] <- X : person, not X[busy -> yes].
"""

#: Demand section + plan for the magic snapshot program: the two `desc`
#: rules are rewritten for the bf adornment (subject bound), while the
#: negation rule, the predicate it reads, and that predicate's
#: dependencies fall back to full evaluation with recorded reasons.
MAGIC_EXPLAIN_SNAPSHOT = """\
demand:
  demanded: set:desc^bf
  seeds (1):
    "__demand__"["magic$set$desc$bf" ->> {p1}].
  rewritten (2):
    [bf] X[desc ->> {Y}] <- X[kids ->> {Y}].
    [bf] X[desc ->> {Y}] <- X[desc ->> {Z}], Z[kids ->> {Y}].
  full evaluation (7):
    p1 : person.  -- head declares class membership
    c1 : person.  -- head declares class membership
    g1 : person.  -- head declares class membership
    p1[kids ->> {c1}].  -- dependency of fully-evaluated scalar:busy
    c1[kids ->> {g1}].  -- dependency of fully-evaluated scalar:busy
    X[busy -> yes] <- X[kids ->> {K}].  -- read under negation or a superset source
    X[idle -> yes] <- X : person, not X[busy -> yes].  -- negation in body

plan: p1[desc ->> {Y}], g1[idle -> F]
#  atom              access path     kernel      est.rows  rows
-  ----------------  --------------  ----------  --------  ----
1  g1[idle -> F]     primary lookup  scalar get         1     1
2  p1[desc ->> {Y}]  primary lookup  set iter           2     2
estimated 2 rows; 2 bindings
"""


class TestMagic:
    @pytest.fixture
    def magic_program(self, tmp_path):
        path = tmp_path / "magic.plog"
        path.write_text(MAGIC_PROGRAM)
        return path

    def test_magic_query_answers_match_full(self, magic_program):
        code, full = invoke(magic_program, "--query", "p1[desc ->> {Y}]")
        code2, magic = invoke(magic_program, "--magic",
                              "--query", "p1[desc ->> {Y}]")
        assert code == code2 == 0
        assert magic == full
        assert "Y=c1" in magic and "Y=g1" in magic

    def test_magic_explain_snapshot(self, magic_program):
        code, output = invoke("explain", "p1[desc ->> {Y}], g1[idle -> F]",
                              "--program", magic_program, "--magic")
        assert code == 0
        assert output == MAGIC_EXPLAIN_SNAPSHOT

    def test_magic_stats_count_seeds_and_rewrites(self, magic_program):
        code, output = invoke(magic_program, "--magic", "--stats",
                              "--query", "p1[desc ->> {Y}]")
        assert code == 0
        assert "stats magic-seeds: 1" in output
        assert "stats rules-rewritten: 2" in output

    def test_magic_explain_flag_shows_adornments(self, magic_program):
        code, output = invoke(magic_program, "--magic", "--explain",
                              "--query", "p1[desc ->> {Y}]")
        assert code == 0
        assert "demand:" in output
        assert "adorn" in output
        assert "magic" in output

    def test_magic_requires_program_and_query(self, magic_program,
                                              tmp_path):
        code, output = invoke(magic_program, "--magic")
        assert code == 2
        assert "--magic" in output
        snapshot = tmp_path / "db.json"
        code, _ = invoke(magic_program, "--dump", snapshot)
        assert code == 0
        code, output = invoke("--db", snapshot, "--magic",
                              "--query", "p1[desc ->> {Y}]")
        assert code == 2

    def test_magic_dump_is_rejected(self, magic_program, tmp_path):
        code, output = invoke(magic_program, "--magic",
                              "--query", "p1[desc ->> {Y}]",
                              "--dump", tmp_path / "out.json")
        assert code == 2
        assert "full fixpoint" in output

    def test_explain_subcommand_magic_needs_program(self):
        code, output = invoke("explain", "X : person", "--magic")
        assert code == 2
        assert "--program" in output


class TestBudgetFlags:
    def test_max_derived_exceeded_exits_2(self, program_file):
        code, output = invoke(program_file, "--max-derived", "1",
                              "--query", "X[senior -> yes]")
        assert code == 2
        assert output.startswith("error:")
        assert "max_derived" in output
        assert len(output.strip().splitlines()) == 1

    def test_timeout_exceeded_exits_2(self, program_file):
        code, output = invoke(program_file, "--timeout-ms", "0",
                              "--query", "X[senior -> yes]")
        assert code == 2
        assert output.startswith("error:")
        assert "0ms" in output
        assert len(output.strip().splitlines()) == 1

    def test_roomy_budget_answers_normally(self, program_file):
        code, output = invoke(program_file, "--timeout-ms", "600000",
                              "--max-derived", "1000000",
                              "--query", "X[senior -> yes]")
        assert code == 0
        assert "X=p2" in output

    def test_magic_run_honours_budget(self, program_file):
        code, output = invoke(program_file, "--magic",
                              "--max-derived", "1",
                              "--query", "X[senior -> yes]")
        assert code == 2
        assert output.startswith("error:")
        assert "max_derived" in output

    def test_explain_subcommand_honours_budget(self, program_file):
        code, output = invoke("explain", "X[senior -> yes]",
                              "--program", program_file,
                              "--max-derived", "1")
        assert code == 2
        assert output.startswith("error:")
        assert "max_derived" in output

    def test_explain_subcommand_roomy_budget_plans(self, program_file):
        code, output = invoke("explain", "X[senior -> yes]",
                              "--program", program_file,
                              "--timeout-ms", "600000")
        assert code == 0
        assert "plan:" in output


class TestServe:
    def test_serve_requires_input(self):
        code, output = invoke("serve")
        assert code == 2
        assert "error:" in output

    def test_serve_missing_file(self, tmp_path):
        code, output = invoke("serve", tmp_path / "absent.plog")
        assert code == 1
        assert output.startswith("error:")

    def test_serve_parser_defaults(self):
        from repro.cli import build_serve_parser

        args = build_serve_parser().parse_args(["p.plog"])
        assert args.port == 7407
        assert args.max_inflight == 8
        assert args.max_queue == 32
        assert args.drain_ms == 5_000.0
        assert not args.no_magic

    def test_serve_answers_queries_then_drains(self, program_file):
        # The serve loop blocks; drive it from a thread and stop it
        # with the wire-level shutdown request.
        import asyncio
        import re
        import threading
        import time

        from repro.server import Client

        out = io.StringIO()
        result = {}

        def serving():
            result["code"] = run(["serve", str(program_file),
                                  "--port", "0"], out=out)

        thread = threading.Thread(target=serving)
        thread.start()
        try:
            deadline = time.time() + 10
            match = None
            while match is None and time.time() < deadline:
                match = re.search(r"serving on ([\d.]+):(\d+)",
                                  out.getvalue())
                time.sleep(0.01)
            assert match is not None, out.getvalue()
            host, port = match.group(1), int(match.group(2))

            async def drive():
                async with Client(host, port) as client:
                    res = await client.query("X[senior -> yes]", ["X"])
                    assert [a["X"] for a in res["answers"]] == ["p2"]
                    await client.shutdown()

            asyncio.run(drive())
        finally:
            thread.join(timeout=10)
        assert not thread.is_alive()
        assert result["code"] == 0
        assert "drained, bye" in out.getvalue()


class TestDurabilityCommands:
    def seed_dir(self, tmp_path, program_file):
        data_dir = tmp_path / "data"
        code, output = invoke("snapshot", data_dir, program_file)
        assert code == 0, output
        return data_dir

    def test_snapshot_seeds_and_reports(self, program_file, tmp_path):
        data_dir = tmp_path / "data"
        code, output = invoke("snapshot", data_dir, program_file)
        assert code == 0
        assert "snapshot " in output and "@ cursor" in output
        assert list(data_dir.glob("snapshot-*.json"))

    def test_snapshot_compacts_existing_state(self, program_file,
                                              tmp_path):
        data_dir = self.seed_dir(tmp_path, program_file)
        code, output = invoke("snapshot", data_dir)
        assert code == 0
        assert "@ cursor" in output

    def test_recover_reports_clean_directory(self, program_file,
                                             tmp_path):
        data_dir = self.seed_dir(tmp_path, program_file)
        code, output = invoke("recover", data_dir)
        assert code == 0
        assert f"recovered {data_dir}" in output
        assert "entries replayed: 0" in output
        assert "tail truncated: 0 bytes" in output

    def test_recover_verify_is_dry_run(self, program_file, tmp_path):
        data_dir = self.seed_dir(tmp_path, program_file)
        wal = sorted(data_dir.glob("wal-*.log"))[-1]
        with open(wal, "ab") as handle:
            handle.write(b"\xde\xad\xbe\xef")
        size = wal.stat().st_size
        code, output = invoke("recover", data_dir, "--verify")
        assert code == 0
        assert "verified (dry run)" in output
        assert "tail truncated: 4 bytes" in output
        assert wal.stat().st_size == size  # untouched
        code, output = invoke("recover", data_dir)
        assert code == 0
        assert "tail truncated: 4 bytes" in output
        assert wal.stat().st_size == size - 4  # now trimmed

    def test_recover_dump_writes_database(self, program_file, tmp_path):
        data_dir = self.seed_dir(tmp_path, program_file)
        dump = tmp_path / "out.json"
        code, output = invoke("recover", data_dir, "--dump", dump)
        assert code == 0
        assert "dumped recovered database" in output
        from repro.oodb import serialize
        db = serialize.loads(dump.read_text())
        assert db.scalars.items()

    def test_recover_unrecoverable_exits_2(self, program_file, tmp_path):
        data_dir = self.seed_dir(tmp_path, program_file)
        for path in data_dir.glob("snapshot-*.json"):
            path.write_text("{broken")
        for path in sorted(data_dir.glob("wal-*.log")):
            path.unlink()
        # Fabricate a WAL that does not reach back to cursor 0.
        from repro.oodb.serialize import FORMAT_VERSION
        from repro.oodb.wal import frame, segment_name
        orphan = data_dir / segment_name(50)
        orphan.write_bytes(frame({"wal": FORMAT_VERSION, "cursor": 50}))
        code, output = invoke("recover", data_dir)
        assert code == 2
        assert output.startswith("error:")

    def test_serve_accepts_data_dir_flags(self):
        from repro.cli import build_serve_parser

        args = build_serve_parser().parse_args(
            ["--data-dir", "d", "--fsync", "always",
             "--checkpoint-bytes", "1024",
             "--checkpoint-interval-ms", "50"])
        assert str(args.data_dir) == "d"
        assert args.fsync == "always"
        assert args.checkpoint_bytes == 1024
        assert args.checkpoint_interval_ms == 50.0
