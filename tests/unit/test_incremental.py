"""Unit tests for incremental view maintenance.

Covers the change-log API on :class:`Database`, catalog patching, the
support index and head specs, the maintainer's counting / DRed / insert
passes with their fallback reasons, the query-level LRU memo, and the
EXPLAIN ``maintenance:`` section.
"""

import pytest

from repro.engine.fixpoint import Engine
from repro.engine.incremental import (
    MaintenanceReport,
    SupportIndex,
    fact_pred,
    net_changes,
    simple_head,
)
from repro.engine.normalize import normalize_program
from repro.lang.parser import parse_program
from repro.oodb.database import Database
from repro.query import Query


def names(db, *values):
    return tuple(db.obj(v) for v in values)


@pytest.fixture
def db():
    base = Database()
    base.add_object("p1", classes=["employee"],
                    scalars={"city": "ny"}, sets={"kids": ["p2"]})
    base.add_object("p2", classes=["employee"], scalars={"city": "ny"})
    base.add_object("car1", scalars={"color": "red"})
    return base


# ---------------------------------------------------------------------------
# The change log
# ---------------------------------------------------------------------------

class TestChangeLog:
    def test_records_asserts_and_retracts(self, db):
        log = db.begin_changes()
        kids, p2, p3 = names(db, "kids", "p2", "p3")
        assert db.assert_set_member(kids, p2, (), p3)
        assert db.retract_set_member(kids, db.obj("p1"), (), p2)
        assert db.retract_scalar(db.obj("city"), p2, ())
        assert db.assert_isa(p3, db.obj("employee"))
        signs = [sign for sign, _ in log.entries]
        kinds = [fact[0] for _, fact in log.entries]
        assert signs == ["+", "-", "-", "+"]
        assert kinds == ["set", "set", "scalar", "isa"]

    def test_noop_mutations_are_not_recorded(self, db):
        log = db.begin_changes()
        kids, p1, p2 = names(db, "kids", "p1", "p2")
        assert not db.assert_set_member(kids, p1, (), p2)  # present
        assert not db.retract_set_member(kids, p2, (), p1)  # absent
        assert not db.retract_scalar(db.obj("age"), p1, ())
        assert not db.retract_isa(p1, db.obj("person"))  # not declared
        assert log.entries == []

    def test_in_sync_tracks_the_data_version(self, db):
        log = db.begin_changes()
        version = db.data_version()
        assert log.in_sync(version, log.cursor())
        db.retract_scalar(db.obj("city"), db.obj("p1"), ())
        assert log.in_sync(db.data_version(), log.cursor())
        # A mutation behind the log's back breaks the accounting.
        db.scalars.put(db.obj("age"), db.obj("p1"), (), db.obj("p2"))
        assert not log.in_sync(db.data_version(), log.cursor())

    def test_alias_disrupts(self, db):
        log = db.begin_changes()
        db.alias("ny", "boston")
        assert log.disrupted is not None
        assert not log.in_sync(db.data_version(), log.cursor())

    def test_begin_changes_is_idempotent(self, db):
        log = db.begin_changes()
        assert db.begin_changes() is log
        db.end_changes()
        assert db.change_log is None

    def test_clone_does_not_carry_the_log(self, db):
        db.begin_changes()
        assert db.clone().change_log is None

    def test_net_changes_cancels_round_trips(self, db):
        log = db.begin_changes()
        kids, p2, p3 = names(db, "kids", "p2", "p3")
        db.assert_set_member(kids, p2, (), p3)
        db.retract_set_member(kids, p2, (), p3)
        db.retract_set_member(kids, db.obj("p1"), (), p2)
        db.assert_set_member(kids, db.obj("p1"), (), p2)
        inserted, deleted = net_changes(log.entries)
        assert inserted == [] and deleted == []


# ---------------------------------------------------------------------------
# Catalog patching
# ---------------------------------------------------------------------------

class TestCatalogPatch:
    def test_patched_in_place_under_a_log(self, db):
        db.begin_changes()
        catalog = db.catalog()
        kids, p2, p3 = names(db, "kids", "p2", "p3")
        before = catalog.sets[kids].facts
        db.assert_set_member(kids, p2, (), p3)
        patched = db.catalog()
        assert patched is catalog  # same object, adjusted counts
        assert patched.sets[kids].facts == before + 1
        db.retract_set_member(kids, p2, (), p3)
        assert db.catalog().sets[kids].facts == before

    def test_counts_match_a_fresh_build(self, db):
        db.begin_changes()
        db.catalog()
        city, p2 = names(db, "city", "p2")
        db.retract_scalar(city, p2, ())
        db.assert_scalar(db.obj("age"), p2, (), db.obj(30))
        patched = db.catalog()
        from repro.oodb.statistics import CardinalityCatalog

        fresh = CardinalityCatalog.build(db)
        assert patched.scalar_total == fresh.scalar_total
        assert patched.scalar[city].facts == fresh.scalar[city].facts
        assert patched.isa_edges == fresh.isa_edges

    def test_without_a_log_the_catalog_rebuilds(self, db):
        first = db.catalog()
        db.retract_scalar(db.obj("city"), db.obj("p2"), ())
        assert db.catalog() is not first


# ---------------------------------------------------------------------------
# Support index and head specs
# ---------------------------------------------------------------------------

RULES = """
    X[d1 ->> {Y}] <- X[kids ->> {Y}].
    X[d1 ->> {Z}] <- X[d1 ->> {Y}], Y[kids ->> {Z}].
    X[red -> 1] <- X[color -> red].
    X.v1[tag -> 1] <- X[color -> red].
"""


class TestSupportIndex:
    def rules(self):
        return normalize_program(parse_program(RULES))

    def test_simple_heads_classified(self):
        rules = self.rules()
        assert simple_head(rules[0]) is not None
        assert simple_head(rules[2]) is not None
        assert simple_head(rules[3]) is None  # path head creates virtuals

    def test_recursive_rules_untracked(self):
        rules = self.rules()
        index = SupportIndex(rules)
        assert index.tracks(rules[0])      # base case reads only kids
        assert not index.tracks(rules[1])  # reads its own stratum
        assert not index.tracks(rules[3])  # complex head

    def test_engine_records_distinct_supports(self, db):
        rules = self.rules()
        engine = Engine(db, rules, record_support=True)
        result = engine.run()
        red = ("scalar", db.obj("red"), db.obj("car1"), (), db.obj(1))
        assert engine.support.counts[red] == 1
        assert result.scalars.get(*red[1:4]) == red[4]

    def test_fact_pred_wildcards_virtual_methods(self, db):
        from repro.oodb.oid import VirtualOid

        virtual = VirtualOid(db.obj("tc"), db.obj("kids"))
        assert fact_pred(("set", virtual, db.obj("p1"), (), db.obj("p2"))) \
            == ("set", None)
        assert fact_pred(("isa", db.obj("p1"), db.obj("c1"))) == ("isa", "isa")


# ---------------------------------------------------------------------------
# Maintainer passes and fallbacks
# ---------------------------------------------------------------------------

def maintained_pair(db, text_rules):
    """An engine-run result plus its maintainer, under a change log."""
    log = db.begin_changes()
    engine = Engine(db, parse_program(text_rules), record_support=True)
    result = engine.run()
    return log, result, engine.maintainer(result, db)


class TestMaintainer:
    def test_counting_keeps_supported_facts(self, db):
        db.add_object("car2", scalars={"color": "red"})
        db.add_object("p1", sets={"cars": ["car1", "car2"]})
        log, result, maintainer = maintained_pair(
            db, "X[hasRed -> 1] <- X[cars ->> {C}], C[color -> red].")
        fact = ("scalar", db.obj("hasRed"), db.obj("p1"), (), db.obj(1))
        db.retract_scalar(db.obj("color"), db.obj("car1"), ())
        report = maintainer.apply(log.since(0))
        assert report.applied and report.kept_by_support == 1
        assert result.scalars.get(*fact[1:4]) == fact[4]
        db.retract_scalar(db.obj("color"), db.obj("car2"), ())
        report = maintainer.apply(log.since(1))
        assert report.applied
        assert result.scalars.get(*fact[1:4]) is None

    @pytest.mark.parametrize("compiled", [True, False])
    def test_counting_recheck_is_existential_over_head_bindings(
            self, db, compiled):
        # Regression: the interpreted delta path yields *full* body
        # bindings; re-checking a support with the dead valuation
        # seeded (instead of just the head binding) wrongly deleted
        # facts whose other valuations survive.
        db.add_object("car2", scalars={"color": "red"})
        db.add_object("p1", sets={"cars": ["car1", "car2"]})
        log = db.begin_changes()
        engine = Engine(
            db, parse_program(
                "X[hasRed -> 1] <- X[cars ->> {C}], C[color -> red]."),
            record_support=True, compiled=compiled)
        result = engine.run()
        maintainer = engine.maintainer(result, db)
        db.retract_scalar(db.obj("color"), db.obj("car1"), ())
        report = maintainer.apply(log.since(0))
        assert report.applied
        assert result.scalars.get(db.obj("hasRed"), db.obj("p1"), ()) \
            == db.obj(1)

    def test_dred_rederives_through_remaining_paths(self, db):
        # Two kids paths p1 -> p2: direct and via p3.
        db.add_object("p1", sets={"kids": ["p3"]})
        db.add_object("p3", sets={"kids": ["p2"]})
        log, result, maintainer = maintained_pair(db, """
            X[d1 ->> {Y}] <- X[kids ->> {Y}].
            X[d1 ->> {Z}] <- X[d1 ->> {Y}], Y[kids ->> {Z}].
        """)
        d1, p1, p2 = names(db, "d1", "p1", "p2")
        db.retract_set_member(db.obj("kids"), p1, (), p2)
        report = maintainer.apply(log.since(0))
        assert report.applied and report.overdeleted >= 1
        assert report.rederived >= 1  # p1 d1 p2 survives via p3
        assert p2 in result.sets.get(d1, p1, ())

    @pytest.mark.parametrize("extra", [
        "",  # counting stratum
        "S[p ->> {V}] <- S[p ->> {W}], W[kids ->> {V}].",  # recursive/DRed
    ])
    def test_program_fact_rules_are_protected(self, db, extra):
        # Regression: a fact asserted by a ground program rule holds
        # unconditionally and must survive losing its *derived* support
        # (this also protects magic seed facts under demand maintenance).
        log, result, maintainer = maintained_pair(db, f"""
            p1[p ->> {{p2}}].
            S[p ->> {{V}}] <- S[kids ->> {{V}}].
            {extra}
        """)
        p, p1, p2 = names(db, "p", "p1", "p2")
        assert p2 in result.sets.get(p, p1, ())
        db.retract_set_member(db.obj("kids"), p1, (), p2)
        report = maintainer.apply(log.since(0))
        assert report.applied
        assert p2 in result.sets.get(p, p1, ())

    def test_fact_rule_with_complex_head_forces_deletion_fallback(self, db):
        log, result, maintainer = maintained_pair(db, """
            p1.anchor[tag -> 1].
            S[tag -> 1] <- S[kids ->> {V}].
        """)
        db.retract_set_member(db.obj("kids"), db.obj("p1"), (), db.obj("p2"))
        report = maintainer.apply(log.since(0))
        assert not report.applied
        assert "cannot be enumerated" in report.reason

    def test_base_facts_are_edb_protected(self, db):
        # A derived fact that is also asserted in the base must survive
        # losing its derivation.
        db.assert_scalar(db.obj("red"), db.obj("car1"), (), db.obj(1))
        log, result, maintainer = maintained_pair(
            db, "X[red -> 1] <- X[color -> red].")
        db.retract_scalar(db.obj("color"), db.obj("car1"), ())
        report = maintainer.apply(log.since(0))
        assert report.applied
        assert result.scalars.get(db.obj("red"), db.obj("car1"), ()) \
            == db.obj(1)

    def test_fallback_on_negation_over_changed_predicate(self, db):
        log, result, maintainer = maintained_pair(
            db, "X[lonely -> 1] <- X : employee, not X[kids ->> {K}].")
        db.retract_set_member(db.obj("kids"), db.obj("p1"), (), db.obj("p2"))
        report = maintainer.apply(log.since(0))
        assert not report.applied
        assert "negation or superset" in report.reason
        # Nothing was mutated: the stale derived fact is untouched.
        assert result.scalars.get(db.obj("lonely"), db.obj("p2"), ()) \
            == db.obj(1)

    def test_fallback_on_superset_reader(self, db):
        db.add_object("p2", sets={"kids": []})
        log, result, maintainer = maintained_pair(
            db, "X[covers -> 1] <- X[kids ->> p2..kids].")
        db.assert_set_member(db.obj("kids"), db.obj("p2"), (), db.obj("p1"))
        report = maintainer.apply(log.since(0))
        assert not report.applied and "superset" in report.reason

    def test_fallback_on_isa_deletion_with_isa_readers(self, db):
        log, result, maintainer = maintained_pair(
            db, "X[emp -> 1] <- X : employee.")
        db.retract_isa(db.obj("p1"), db.obj("employee"))
        report = maintainer.apply(log.since(0))
        assert not report.applied and "class membership" in report.reason

    def test_isa_insertions_are_maintained(self, db):
        log, result, maintainer = maintained_pair(
            db, "X[emp -> 1] <- X : employee.")
        db.assert_isa(db.obj("p3"), db.obj("employee"))
        report = maintainer.apply(log.since(0))
        assert report.applied
        assert result.scalars.get(db.obj("emp"), db.obj("p3"), ()) \
            == db.obj(1)

    def test_fallback_on_unrederivable_head_deletion(self, db):
        log, result, maintainer = maintained_pair(
            db, "X.v1[tag -> 1] <- X[color -> red].")
        db.retract_scalar(db.obj("color"), db.obj("car1"), ())
        report = maintainer.apply(log.since(0))
        assert not report.applied and "cannot be unified" in report.reason

    def test_virtual_identity_preserved_on_insertion(self, db):
        log, result, maintainer = maintained_pair(
            db, "X.v1[tag -> 1] <- X[color -> red].")
        v1 = db.obj("v1")
        before = result.scalars.get(v1, db.obj("car1"), ())
        db.add_object("car2", scalars={"color": "red"})
        report = maintainer.apply(log.since(0))
        assert report.applied
        from repro.oodb.oid import VirtualOid

        assert result.scalars.get(v1, db.obj("car1"), ()) == before
        assert result.scalars.get(v1, db.obj("car2"), ()) \
            == VirtualOid(v1, db.obj("car2"))

    def test_unrelated_changes_touch_nothing(self, db):
        log, result, maintainer = maintained_pair(
            db, "X[red -> 1] <- X[color -> red].")
        db.retract_scalar(db.obj("city"), db.obj("p1"), ())
        report = maintainer.apply(log.since(0))
        assert report.applied and report.rules_affected == 0
        assert report.overdeleted == 0 and report.reinserted == 0
        # The base change itself still lands in the result database.
        assert result.scalars.get(db.obj("city"), db.obj("p1"), ()) is None

    def test_report_renders(self):
        assert "full re-derivation: why" in \
            MaintenanceReport(applied=False, reason="why").render()
        rendered = MaintenanceReport(applied=True, deleted_base=1,
                                     overdeleted=2, rederived=1).render()
        assert "maintenance:" in rendered and "overdeleted 2" in rendered


# ---------------------------------------------------------------------------
# Query integration: sync, LRU, EXPLAIN
# ---------------------------------------------------------------------------

DESC = """
    X[d1 ->> {Y}] <- X[kids ->> {Y}].
    X[d1 ->> {Z}] <- X[d1 ->> {Y}], Y[kids ->> {Z}].
"""


class TestQueryIntegration:
    def test_memoised_result_is_maintained_not_rebuilt(self, db):
        db.begin_changes()
        query = Query(db, program=parse_program(DESC), magic=False)
        query.all("X[d1 ->> {Y}]")
        first = query._materialized
        db.assert_set_member(db.obj("kids"), db.obj("p2"), (), db.obj("p3"))
        rows = query.all("X[d1 ->> {Y}]")
        assert query._materialized is first  # patched in place
        assert query.last_maintenance.applied
        scratch = Query(db, program=parse_program(DESC), magic=False,
                        incremental=False)
        assert [r.sort_key() for r in rows] \
            == [r.sort_key() for r in scratch.all("X[d1 ->> {Y}]")]

    def test_unchanged_base_reuses_the_memo_in_both_modes(self, db):
        # Regression: incremental=False must still memoise between
        # queries when nothing changed (the pre-maintenance behaviour).
        for incremental in (True, False):
            query = Query(db, program=parse_program(DESC), magic=False,
                          incremental=incremental)
            query.all("X[d1 ->> {Y}]")
            first = query._materialized
            query.all("X[d1 ->> {Y}]")
            assert query._materialized is first

    def test_memo_entries_zero_disables_memoisation(self, db):
        query = Query(db, program=parse_program(DESC), memo_entries=0)
        query.all("p1[d1 ->> {Y}]")
        query.all("p1[d1 ->> {Y}]")
        assert query._demand_dbs == {}
        assert query.last_demand is not None  # still answers via a run

    def test_support_recording_waits_for_a_change_log(self, db):
        # Without a log the support index is dead weight: not recorded.
        query = Query(db, program=parse_program(DESC))
        query.all("p1[d1 ->> {Y}]")
        assert query.last_demand._engine.support is None
        db.begin_changes()
        query2 = Query(db, program=parse_program(DESC))
        query2.all("p1[d1 ->> {Y}]")
        assert query2.last_demand._engine.support is not None

    def test_result_database_log_is_trimmed_per_maintenance_run(self, db):
        db.begin_changes()
        query = Query(db, program=parse_program(DESC), magic=False)
        query.all("X[d1 ->> {Y}]")
        kids = db.obj("kids")
        for index in range(3, 8):
            db.assert_set_member(kids, db.obj("p2"), (),
                                 db.obj(f"p{index}"))
            query.all("X[d1 ->> {Y}]")
            assert query.last_maintenance.applied
        assert query._materialized.change_log.entries == []

    def test_without_change_log_falls_back_to_rebuild(self, db):
        query = Query(db, program=parse_program(DESC), magic=False)
        query.all("X[d1 ->> {Y}]")
        first = query._materialized
        db.assert_set_member(db.obj("kids"), db.obj("p2"), (), db.obj("p3"))
        query.all("X[d1 ->> {Y}]")
        assert query._materialized is not first
        assert query.last_maintenance is None

    def test_demand_memo_is_lru_with_eviction_counter(self, db):
        db.begin_changes()
        query = Query(db, program=parse_program(DESC), memo_entries=2)
        query.all("p1[d1 ->> {Y}]")
        query.all("p2[d1 ->> {Y}]")
        query.all("p1[d1 ->> {Y}]")  # touch: p1 becomes most recent
        query.all("X[d1 ->> {b}]")   # evicts p2, the least recent
        assert query.memo_evictions == 1
        assert query.last_demand.stats.memo_evictions == 1
        keys = list(query._demand_dbs)
        assert len(keys) == 2
        query.all("p1[d1 ->> {Y}]")
        assert query.memo_evictions == 1  # still memoised: no rebuild

    def test_explain_renders_maintenance_section(self, db):
        db.begin_changes()
        query = Query(db, program=parse_program(DESC))
        text = "p1[d1 ->> {Y}]"
        query.all(text)
        db.assert_set_member(db.obj("kids"), db.obj("p2"), (), db.obj("p3"))
        rendered = query.explain(text).render()
        assert "maintenance:" in rendered
        assert "incremental:" in rendered

    def test_explain_renders_incremental_fallback_reason(self, db):
        db.begin_changes()
        program = parse_program(
            "X[lonely -> 1] <- X : employee, not X[kids ->> {K}].")
        query = Query(db, program=program)
        text = "X[lonely -> V]"
        query.all(text)
        db.retract_set_member(db.obj("kids"), db.obj("p1"), (), db.obj("p2"))
        rendered = query.explain(text).render()
        assert "maintenance:" in rendered
        assert "full re-derivation:" in rendered
        assert "negation or superset" in rendered

    def test_maintenance_counters_reach_engine_stats(self, db):
        db.begin_changes()
        query = Query(db, program=parse_program(DESC), magic=True)
        text = "p1[d1 ->> {Y}]"
        query.all(text)
        db.retract_set_member(db.obj("kids"), db.obj("p1"), (), db.obj("p2"))
        query.all(text)
        row = query.last_demand.stats.as_row()
        assert row["maintenance"] == 1
        assert row["overdeleted"] >= 1


# ---------------------------------------------------------------------------
# Realizer replay
# ---------------------------------------------------------------------------

def test_realizer_replay_logs_only_new_facts(db):
    from repro.engine.heads import HeadRealizer

    realizer = HeadRealizer(db)
    kids, p1, p2, p3 = names(db, "kids", "p1", "p2", "p3")
    entries = [("set", kids, p1, (), p2),   # already present
               ("set", kids, p2, (), p3),   # new
               ("isa", p3, db.obj("employee"))]
    assert realizer.replay(entries) == 2
    assert realizer.log == entries[1:]
    assert p3 in db.sets.get(kids, p2, ())
