"""Unit tests for the reference AST (Definition 1)."""

import pytest

from repro.core.ast import (
    SELF,
    Comparison,
    IsaFilter,
    Molecule,
    Name,
    Paren,
    Path,
    Program,
    Rule,
    ScalarFilter,
    SetEnumFilter,
    SetFilter,
    Var,
    enumfilter,
    isa,
    mol,
    name,
    scalar_path,
    selfilter,
    set_path,
    setfilter,
    sfilter,
    var,
)


class TestNodes:
    def test_name_holds_strings_and_integers(self):
        assert Name("mary").value == "mary"
        assert Name(30).value == 30

    def test_nodes_are_hashable_and_structural(self):
        assert Name("a") == Name("a")
        assert Name("a") != Name("b")
        assert hash(Var("X")) == hash(Var("X"))
        assert {Name("a"), Name("a")} == {Name("a")}

    def test_name_and_int_name_differ(self):
        assert Name("4") != Name(4)

    def test_path_children_order(self):
        path = Path(Name("a"), Name("m"), (Var("X"), Name(1)))
        assert path.children() == (Name("a"), Name("m"), Var("X"), Name(1))

    def test_molecule_children_include_filter_references(self):
        molecule = Molecule(Name("a"), (
            ScalarFilter(Name("m"), (Var("P"),), Var("R")),
            IsaFilter(Name("c")),
        ))
        assert molecule.children() == (
            Name("a"), Name("m"), Var("P"), Var("R"), Name("c"),
        )

    def test_walk_is_preorder_and_complete(self):
        ref = Molecule(
            Path(Name("a"), Name("m"), ()),
            (ScalarFilter(Name("f"), (), Var("X")),),
        )
        nodes = list(ref.walk())
        assert nodes[0] is ref
        assert Name("a") in nodes
        assert Var("X") in nodes

    def test_paren_wraps_and_unwraps(self):
        inner = Path(Name("integer"), Name("list"), ())
        assert Paren(inner).children() == (inner,)

    def test_molecule_is_isa(self):
        assert isa(Name("x"), "c").is_isa
        assert not mol(Name("x"), sfilter("m", Name("r"))).is_isa
        assert not Molecule(Name("x"), ()).is_isa


class TestConvenienceConstructors:
    def test_scalar_and_set_paths(self):
        assert scalar_path(name("a"), "m") == Path(Name("a"), Name("m"), ())
        assert set_path(name("a"), "m").set_valued

    def test_string_methods_are_lifted(self):
        assert scalar_path(name("a"), "m").method == Name("m")
        assert sfilter("m", var("X")).method == Name("m")

    def test_selector_filter_uses_self(self):
        assert selfilter(var("Y")) == ScalarFilter(SELF, (), Var("Y"))

    def test_setfilter_and_enumfilter(self):
        assert setfilter("m", set_path(name("p"), "q")).method == Name("m")
        enum = enumfilter("m", (var("Y"), name("z")))
        assert enum.elements == (Var("Y"), Name("z"))


class TestComparison:
    def test_rejects_unknown_operator(self):
        with pytest.raises(ValueError):
            Comparison("~", Name(1), Name(2))

    def test_references(self):
        cmp = Comparison("<", Var("X"), Name(3))
        assert cmp.references() == (Var("X"), Name(3))


class TestRuleAndProgram:
    def test_fact_detection(self):
        fact = Rule(isa(name("p1"), "employee"))
        assert fact.is_fact
        assert not Rule(Var("X"), (Var("X"),)).is_fact

    def test_program_partitions(self):
        fact = Rule(isa(name("p1"), "employee"))
        rule = Rule(Var("X"), (isa(var("X"), "person"),))
        program = Program((fact, rule))
        assert program.facts == (fact,)
        assert program.proper_rules == (rule,)
        assert len(program) == 2
        assert list(program) == [fact, rule]
