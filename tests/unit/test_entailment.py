"""Definition 5: entailment, comparisons, and the model-check oracle."""

import pytest

from repro.core.ast import Comparison, Name, Var
from repro.core.entailment import (
    comparison_holds,
    compare_oids,
    counterexamples,
    entails,
    entails_all,
    rule_holds,
    valuations_over,
)
from repro.core.valuation import VariableValuation
from repro.errors import EvaluationError
from repro.lang.parser import parse_literal, parse_reference, parse_rule
from repro.oodb.database import Database
from repro.oodb.oid import NamedOid, VirtualOid


def n(value):
    return NamedOid(value)


@pytest.fixture
def db():
    db = Database()
    db.add_object("p1", classes=["employee"],
                  scalars={"age": 30},
                  sets={"assistants": ["a1"]})
    db.add_object("a1", scalars={"salary": 1000})
    return db


class TestReferenceEntailment:
    def test_entailed_iff_denotes(self, db):
        assert entails(db, parse_reference("p1.age"))
        assert not entails(db, parse_reference("p1.spouse"))

    def test_paper_section5_set_reference(self, db):
        # p1..assistants[salary -> 1000] is true: at least one such
        # assistant exists.
        assert entails(db, parse_reference(
            "p1..assistants[salary -> 1000]"))
        assert not entails(db, parse_reference(
            "p1..assistants[salary -> 9]"))

    def test_with_valuation(self, db):
        nu = VariableValuation({Var("X"): n("p1")})
        assert entails(db, parse_reference("X[age -> 30]"), nu)

    def test_entails_all(self, db):
        literals = (parse_reference("p1 : employee"),
                    parse_reference("p1.age"))
        assert entails_all(db, literals)


class TestComparisons:
    def test_equality_on_objects(self, db):
        assert comparison_holds(db, parse_literal("p1.age = 30"))
        assert comparison_holds(db, parse_literal("p1.age != 31"))

    def test_nondenoting_side_fails(self, db):
        assert not comparison_holds(db, parse_literal("p1.spouse = p1"))

    def test_integer_ordering(self, db):
        assert comparison_holds(db, parse_literal("p1.age < 31"))
        assert comparison_holds(db, parse_literal("p1.age >= 30"))
        assert not comparison_holds(db, parse_literal("p1.age > 30"))

    def test_string_ordering(self):
        assert compare_oids("<", n("abc"), n("abd"))
        assert compare_oids("<=", n("a"), n("a"))

    def test_mixed_types_never_ordered(self):
        assert not compare_oids("<", n(1), n("a"))
        assert not compare_oids(">", n("a"), n(1))

    def test_virtuals_compare_by_identity_only(self):
        v = VirtualOid(n("boss"), n("p1"))
        assert compare_oids("=", v, v)
        assert not compare_oids("<", v, n(1))

    def test_unknown_operator(self):
        with pytest.raises(EvaluationError):
            compare_oids("~~", n(1), n(2))


class TestRuleOracle:
    def test_satisfied_rule(self, db):
        rule = parse_rule("X : employee <- X[age -> 30].")
        assert rule_holds(db, rule)

    def test_violated_rule_and_counterexample(self, db):
        rule = parse_rule("X[senior -> yes] <- X[age -> 30].")
        assert not rule_holds(db, rule)
        witnesses = counterexamples(db, rule)
        assert any(w[Var("X")] == n("p1") for w in witnesses)

    def test_ground_rule(self, db):
        assert rule_holds(db, parse_rule("p1 : employee <- p1.age."))

    def test_explosion_guard(self, db):
        rule = parse_rule("A[x -> B] <- A[y -> B], C[z -> D], E[w -> F].")
        with pytest.raises(EvaluationError, match="assignments"):
            rule_holds(db, rule, max_assignments=10)

    def test_valuations_over_is_exhaustive(self):
        universe = [n(1), n(2)]
        all_nu = list(valuations_over([Var("X"), Var("Y")], universe))
        assert len(all_nu) == 4
