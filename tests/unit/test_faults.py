"""Fault-injection harness tests: plans, rollback, support transactions.

Covers the seeded/targeted :mod:`repro.testing.faults` machinery itself,
:meth:`Database.rollback_changes` (the transactional backbone), the
:class:`SupportIndex` journal, and the end-to-end guarantee: a fault
anywhere inside :meth:`Maintainer.apply` leaves the result database
bit-identical to its pre-call state, and a retry (or a from-scratch
re-derivation) produces the unfaulted answers.
"""

import pytest

from repro.engine.fixpoint import Engine
from repro.engine.incremental import SupportIndex
from repro.engine.normalize import normalize_program
from repro.errors import PathLogError
from repro.lang.parser import parse_program
from repro.oodb.database import Database
from repro.query import Query
from repro.testing import (
    FaultPlan,
    InjectedFault,
    fault_point,
    inject,
    inject_random,
    observe,
)

DESC_RULES = """
    X[desc ->> {Y}] <- X[kids ->> {Y}].
    X[desc ->> {Y}] <- X..desc[kids ->> {Y}].
"""


def seed_family(db):
    kids = db.obj("kids")
    db.assert_set_member(kids, db.obj("peter"), (), db.obj("tim"))
    db.assert_set_member(kids, db.obj("peter"), (), db.obj("mary"))
    db.assert_set_member(kids, db.obj("mary"), (), db.obj("tom"))
    return kids


def set_state(db):
    """Set-table facts, ignoring empty groups (retracting the last
    member keeps the group key around -- semantically no fact)."""
    return {key: members for key, members in db.sets.items() if members}


# ---------------------------------------------------------------------------
# The harness itself
# ---------------------------------------------------------------------------

class TestFaultHarness:
    def test_disabled_by_default(self):
        fault_point("anywhere")  # no plan installed: a no-op

    def test_targeted_site_and_nth(self):
        with inject("alpha", nth=2):
            fault_point("alpha")  # hit 1: survives
            fault_point("beta")  # other sites never fire
            with pytest.raises(InjectedFault) as info:
                fault_point("alpha")  # hit 2: fires
            assert info.value.site == "alpha"
            assert info.value.hit == 2
        fault_point("alpha")  # plan uninstalled on exit

    def test_injected_fault_is_not_a_pathlog_error(self):
        # Library `except PathLogError` handlers must never swallow an
        # injected fault -- the property suites rely on it escaping.
        assert not issubclass(InjectedFault, PathLogError)
        assert issubclass(InjectedFault, RuntimeError)

    def test_seeded_random_schedule_is_deterministic(self):
        def drive():
            hits = []
            with inject_random(seed=7, rate=0.5) as plan:
                for i in range(50):
                    try:
                        fault_point(f"site{i % 3}")
                    except InjectedFault as fault:
                        hits.append((i, fault.site))
                return hits, dict(plan.counts)

        first = drive()
        second = drive()
        assert first == second
        assert first[0], "rate=0.5 over 50 hits must fire at least once"

    def test_random_schedule_restricted_to_sites(self):
        with inject_random(seed=0, rate=1.0, sites=["only.here"]):
            fault_point("somewhere.else")  # not in scope: no fire
            with pytest.raises(InjectedFault):
                fault_point("only.here")

    def test_observe_counts_without_firing(self):
        with observe() as plan:
            for _ in range(3):
                fault_point("counted")
            fault_point("other")
        assert plan.counts == {"counted": 3, "other": 1}

    def test_plans_nest_and_restore(self):
        with inject("outer", nth=1):
            with observe() as plan:
                fault_point("outer")  # inner plan disarmed: counts only
            assert plan.counts == {"outer": 1}
            with pytest.raises(InjectedFault):
                fault_point("outer")  # outer plan restored

    def test_engine_sites_are_planted(self):
        # One ordinary run passes every engine-side fault point; the
        # observer sees the sites the tentpole promises exist.
        db = Database()
        seed_family(db)
        with observe() as plan:
            Engine(db, parse_program(DESC_RULES)).run()
        assert plan.counts.get("engine.iteration", 0) > 0
        assert plan.counts.get("engine.emit", 0) > 0
        assert plan.counts.get("columnar.step", 0) > 0

    def test_maintenance_sites_are_planted(self):
        db = Database()
        log = db.begin_changes()
        kids = seed_family(db)
        engine = Engine(db, parse_program(DESC_RULES),
                        record_support=True)
        result = engine.run()
        maintainer = engine.maintainer(result, db)
        cursor = log.cursor()
        db.assert_set_member(kids, db.obj("tom"), (), db.obj("ann"))
        db.retract_set_member(kids, db.obj("mary"), (), db.obj("tom"))
        with observe() as plan:
            report = maintainer.apply(log.since(cursor))
        assert report.applied
        assert plan.counts.get("maintain.apply", 0) == 1
        assert plan.counts.get("maintain.overdelete", 0) > 0
        assert plan.counts.get("maintain.insert", 0) > 0
        assert plan.counts.get("heads.replay", 0) > 0


# ---------------------------------------------------------------------------
# Database.rollback_changes
# ---------------------------------------------------------------------------

class TestRollbackChanges:
    def test_rolls_back_to_cursor_and_stays_in_sync(self):
        db = Database()
        log = db.begin_changes()
        kids = seed_family(db)
        db.assert_scalar(db.obj("age"), db.obj("tim"), (), db.obj(30))
        cursor = log.cursor()
        before_sets = set_state(db)
        before_scalars = dict(db.scalars.items())
        before_len = len(db)

        db.assert_set_member(kids, db.obj("tom"), (), db.obj("zoe"))
        db.retract_set_member(kids, db.obj("peter"), (), db.obj("tim"))
        db.retract_scalar(db.obj("age"), db.obj("tim"), ())
        db.assert_scalar(db.obj("age"), db.obj("tim"), (), db.obj(31))
        db.assert_isa(db.obj("zoe"), db.obj("person"))

        undone = db.rollback_changes(cursor)
        assert undone == 5
        assert set_state(db) == before_sets
        assert dict(db.scalars.items()) == before_scalars
        assert len(db) >= before_len  # objects interned stay interned
        # The undo went through the API: the log explains every version
        # bump, so consumers' in_sync arithmetic still holds.
        assert log.in_sync(db.data_version(), log.cursor())

    def test_rollback_of_nothing_is_a_noop(self):
        db = Database()
        log = db.begin_changes()
        seed_family(db)
        version = db.data_version()
        assert db.rollback_changes(log.cursor()) == 0
        assert db.data_version() == version

    def test_columnar_surrogates_survive_rollback(self):
        # The columnar executor rides the OID interner's surrogate
        # table; rollback goes through the ordinary retraction API, so
        # surrogates stay unique and the int-column kernels agree with
        # the interpreted walk afterwards.
        db = Database()
        log = db.begin_changes()
        kids = seed_family(db)
        cursor = log.cursor()
        db.assert_set_member(kids, db.obj("tom"), (), db.obj("zoe"))
        db.retract_set_member(kids, db.obj("peter"), (), db.obj("tim"))
        db.rollback_changes(cursor)
        for name in ("peter", "tim", "mary", "tom", "zoe"):
            oid = db.obj(name)
            assert db.interner.resolve(db.interner.intern(oid)) == oid
        col = Engine(db, parse_program(DESC_RULES),
                     executor="columnar").run()
        interp = Engine(db, parse_program(DESC_RULES),
                        executor="interpreted").run()
        assert set_state(col) == set_state(interp)


# ---------------------------------------------------------------------------
# SupportIndex transactions
# ---------------------------------------------------------------------------

class TestSupportTransactions:
    def _index_and_rule(self):
        rules = normalize_program(parse_program(
            "X[senior -> yes] <- X[age -> A], A >= 65."))
        return SupportIndex(rules), rules[0]

    def test_rollback_restores_counts_and_seen(self):
        db = Database()
        index, rule = self._index_and_rule()
        binding1 = {v: db.obj("p1") for v in index._tracked[
            id(rule)].spec.head_vars}
        index.observe(rule, binding1, db)
        before_counts = dict(index.counts)
        before_seen = set(index.seen)

        index.begin_txn()
        binding2 = {v: db.obj("p2") for v in index._tracked[
            id(rule)].spec.head_vars}
        index.observe(rule, binding2, db)
        key1 = index.support_key(rule, binding1)
        facts1 = index._tracked[id(rule)].spec.facts(db, binding1)
        index.retract(key1, facts1)
        for fact in list(index.counts):
            index.forget(fact)
        index.rollback_txn()

        assert dict(index.counts) == before_counts
        assert set(index.seen) == before_seen

    def test_commit_keeps_mutations(self):
        db = Database()
        index, rule = self._index_and_rule()
        index.begin_txn()
        binding = {v: db.obj("p1") for v in index._tracked[
            id(rule)].spec.head_vars}
        index.observe(rule, binding, db)
        index.commit_txn()
        assert index.counts  # the observation survived
        assert index._journal is None


# ---------------------------------------------------------------------------
# Transactional Maintainer.apply
# ---------------------------------------------------------------------------

MAINTAIN_SITES = [
    "maintain.overdelete", "maintain.counting", "maintain.dred",
    "maintain.rederive", "maintain.insert", "heads.replay",
]


class TestTransactionalApply:
    def _materialised(self):
        db = Database()
        log = db.begin_changes()
        kids = seed_family(db)
        # A diamond: desc(peter, tom) holds through mary AND tim, so
        # deleting the mary edge exercises the rederive pass (the fact
        # is overdeleted, then found still derivable and replayed).
        db.assert_set_member(kids, db.obj("tim"), (), db.obj("tom"))
        engine = Engine(db, parse_program(DESC_RULES),
                        record_support=True)
        result = engine.run()
        maintainer = engine.maintainer(result, db)
        return db, log, kids, result, maintainer

    def _mutate(self, db, log, kids):
        cursor = log.cursor()
        db.assert_set_member(kids, db.obj("tom"), (), db.obj("ann"))
        db.retract_set_member(kids, db.obj("mary"), (), db.obj("tom"))
        return cursor

    def snapshot(self, result):
        return (set_state(result), dict(result.scalars.items()))

    @pytest.mark.parametrize("site", MAINTAIN_SITES)
    def test_fault_mid_apply_rolls_back(self, site):
        db, log, kids, result, maintainer = self._materialised()
        cursor = self._mutate(db, log, kids)
        before = self.snapshot(result)
        with inject(site, nth=1):
            with pytest.raises(InjectedFault):
                maintainer.apply(log.since(cursor))
        assert self.snapshot(result) == before
        # Retry without the fault: identical to a never-faulted apply.
        report = maintainer.apply(log.since(cursor))
        assert report.applied
        fresh = Engine(db, parse_program(DESC_RULES)).run()
        assert set_state(result) == set_state(fresh)

    def test_query_falls_back_after_faulted_maintenance(self):
        db = Database()
        db.begin_changes()
        kids = seed_family(db)
        query = Query(db, program=parse_program(DESC_RULES), magic=False)
        baseline = query.all("peter[desc ->> {X}]")
        db.assert_set_member(kids, db.obj("tom"), (), db.obj("ann"))
        db.retract_set_member(kids, db.obj("mary"), (), db.obj("tom"))
        with inject("maintain.insert", nth=1):
            answers = query.all("peter[desc ->> {X}]")
        assert baseline != answers  # the change is visible
        expected = Query(db.clone(), program=parse_program(DESC_RULES),
                         magic=False).all("peter[desc ->> {X}]")
        assert [a.sort_key() for a in answers] \
            == [a.sort_key() for a in expected]
        # The failure and the fallback are surfaced, not hidden.
        assert query.last_maintenance is not None
        assert not query.last_maintenance.applied
        assert "InjectedFault" in query.last_maintenance.reason
