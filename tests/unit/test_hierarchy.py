"""Class hierarchy tests: partial order, closure, reflexivity modes."""

import pytest

from repro.oodb.hierarchy import ClassHierarchy, HierarchyError
from repro.oodb.oid import NamedOid


def n(value):
    return NamedOid(value)


@pytest.fixture
def taxonomy():
    h = ClassHierarchy()
    h.declare(n("automobile"), n("vehicle"))
    h.declare(n("truck"), n("vehicle"))
    h.declare(n("car1"), n("automobile"))
    h.declare(n("manager"), n("employee"))
    h.declare(n("employee"), n("person"))
    h.declare(n("p0"), n("manager"))
    return h


class TestDeclare:
    def test_duplicate_edge_returns_false(self, taxonomy):
        assert taxonomy.declare(n("car1"), n("automobile")) is False

    def test_self_edge_rejected(self):
        h = ClassHierarchy()
        with pytest.raises(HierarchyError, match="cycle"):
            h.declare(n("a"), n("a"))

    def test_cycle_rejected(self, taxonomy):
        with pytest.raises(HierarchyError, match="cycle"):
            taxonomy.declare(n("person"), n("manager"))

    def test_long_cycle_rejected(self):
        h = ClassHierarchy()
        h.declare(n("a"), n("b"))
        h.declare(n("b"), n("c"))
        h.declare(n("c"), n("d"))
        with pytest.raises(HierarchyError):
            h.declare(n("d"), n("a"))

    def test_remove(self, taxonomy):
        assert taxonomy.remove(n("car1"), n("automobile"))
        assert not taxonomy.isa(n("car1"), n("vehicle"))
        assert taxonomy.remove(n("car1"), n("automobile")) is False


class TestClosure:
    def test_transitivity(self, taxonomy):
        assert taxonomy.isa(n("car1"), n("vehicle"))
        assert taxonomy.isa(n("p0"), n("person"))

    def test_irreflexive_by_default(self, taxonomy):
        assert not taxonomy.isa(n("vehicle"), n("vehicle"))

    def test_ancestors(self, taxonomy):
        assert taxonomy.ancestors(n("p0")) == {
            n("manager"), n("employee"), n("person"),
        }

    def test_members(self, taxonomy):
        assert taxonomy.members(n("vehicle")) == {
            n("automobile"), n("truck"), n("car1"),
        }

    def test_memo_invalidation_on_mutation(self, taxonomy):
        assert n("vehicle") in taxonomy.ancestors(n("car1"))
        taxonomy.declare(n("vehicle"), n("asset"))
        assert n("asset") in taxonomy.ancestors(n("car1"))

    def test_classes_of_unknown_is_empty(self, taxonomy):
        assert taxonomy.classes_of(n("ghost")) == frozenset()


class TestReflexiveMode:
    def test_reflexive_membership(self):
        h = ClassHierarchy(reflexive=True)
        h.declare(n("a"), n("b"))
        assert h.isa(n("a"), n("a"))
        assert n("b") in h.members(n("b"))
        assert n("a") in h.classes_of(n("a"))


class TestIntrospection:
    def test_declared_edges_and_objects(self, taxonomy):
        edges = set(taxonomy.declared_edges())
        assert (n("car1"), n("automobile")) in edges
        assert len(taxonomy) == len(edges) == 6
        assert n("person") in taxonomy.objects()

    def test_declared_parents_children(self, taxonomy):
        assert taxonomy.declared_parents(n("car1")) == {n("automobile")}
        assert taxonomy.declared_children(n("vehicle")) == {
            n("automobile"), n("truck"),
        }

    def test_clone_is_independent(self, taxonomy):
        copy = taxonomy.clone()
        copy.declare(n("bike"), n("vehicle"))
        assert not taxonomy.isa(n("bike"), n("vehicle"))
        assert copy.isa(n("bike"), n("vehicle"))
