"""Deterministic failover routing: FailoverPolicy and FailoverClient.

Every test injects the RNG and the clock, so routing decisions replay
exactly -- no sleeping, no sockets.  The client tests script fake
per-endpoint clients and count which endpoints actually received
requests.
"""

import asyncio
import random

import pytest

from repro.server import (
    ConnectionLost,
    FailoverClient,
    FailoverPolicy,
    ReplicaStale,
    RequestError,
    RequestTimeout,
    RetryPolicy,
)

PRIMARY = ("p", 1)
REPLICA_A = ("a", 2)
REPLICA_B = ("b", 3)


class FakeClock:
    def __init__(self):
        self.now = 100.0

    def __call__(self):
        return self.now


def make_policy(**kwargs):
    clock = FakeClock()
    policy = FailoverPolicy(PRIMARY, [REPLICA_A, REPLICA_B],
                            reprobe_ms=1_000.0,
                            rng=random.Random(0), clock=clock, **kwargs)
    return policy, clock


class TestFailoverPolicy:
    def test_reads_prefer_replicas_writes_stay_on_the_primary(self):
        policy, _ = make_policy()
        for _ in range(20):
            assert not policy.pick_read().is_primary
            assert policy.pick_write().is_primary

    def test_reads_spread_over_both_replicas(self):
        policy, _ = make_policy()
        seen = {policy.pick_read().address for _ in range(50)}
        assert seen == {REPLICA_A, REPLICA_B}

    def test_demoted_replica_stops_receiving_reads(self):
        policy, _ = make_policy()
        down = policy.replicas[0]
        policy.demote(down)
        picks = {policy.pick_read().address for _ in range(20)}
        assert picks == {REPLICA_B}

    def test_all_replicas_demoted_falls_back_to_the_primary(self):
        policy, _ = make_policy()
        for replica in policy.replicas:
            policy.demote(replica)
        assert policy.pick_read().is_primary

    def test_everything_demoted_probes_least_recently_demoted(self):
        policy, clock = make_policy()
        policy.demote(policy.replicas[0])      # retry_at = 101.0
        clock.now = 100.2
        policy.demote(policy.replicas[1])      # retry_at = 101.2
        clock.now = 100.4
        policy.demote(policy.primary)          # retry_at = 101.4
        # Degrades to probing, never to refusing -- and the probe goes
        # to the endpoint whose demotion is oldest.
        assert policy.pick_read().address == REPLICA_A

    def test_reprobe_window_restores_eligibility(self):
        policy, clock = make_policy()
        down = policy.replicas[0]
        policy.demote(down)
        assert down.retry_at == pytest.approx(101.0)
        picks = {policy.pick_read().address for _ in range(20)}
        assert REPLICA_A not in picks
        clock.now = 101.5                      # past the reprobe window
        picks = {policy.pick_read().address for _ in range(50)}
        assert REPLICA_A in picks              # eligible again
        assert not down.healthy                # ...but not yet healthy
        policy.restore(down)
        assert down.healthy

    def test_writes_route_to_the_primary_even_when_demoted(self):
        policy, _ = make_policy()
        policy.demote(policy.primary)
        assert policy.pick_write() is policy.primary

    def test_no_replicas_reads_use_the_primary(self):
        policy = FailoverPolicy(PRIMARY, rng=random.Random(0),
                                clock=FakeClock())
        assert policy.pick_read().is_primary


class FakeEndpointClient:
    """Scripted responses for one endpoint; counts every request."""

    def __init__(self, address, script):
        self.address = address
        self.script = script            # list of responses/exceptions
        self.requests = []
        self.writes = []

    def _next(self):
        outcome = self.script.pop(0) if self.script else {"ok": True}
        if isinstance(outcome, Exception):
            raise outcome
        return dict(outcome, served_by=self.address)

    async def request(self, payload):
        self.requests.append(payload)
        return self._next()

    async def write(self, changes):
        self.writes.append(changes)
        return self._next()

    async def close(self):
        pass


def make_client(scripts=None):
    """FailoverClient over fakes; returns (client, fakes-by-address)."""
    scripts = scripts or {}
    fakes = {}

    def factory(host, port):
        fake = FakeEndpointClient((host, port),
                                  list(scripts.get((host, port), [])))
        fakes[host, port] = fake
        return fake

    policy, clock = make_policy()
    retry = RetryPolicy(attempts=4, base_ms=0.01, cap_ms=0.01,
                        rng=random.Random(0))
    return (FailoverClient(policy, retry=retry, client_factory=factory),
            fakes, policy, clock)


def run(coro):
    return asyncio.run(coro)


class TestFailoverClient:
    def test_reads_land_on_replicas_only(self):
        client, fakes, _, _ = make_client()

        async def main():
            for _ in range(10):
                response = await client.query("q[x ->> {Y}]")
                assert response["served_by"] in (REPLICA_A, REPLICA_B)

        run(main())
        assert PRIMARY not in fakes
        assert client.failovers == 0

    def test_writes_never_route_to_replicas(self):
        client, fakes, policy, _ = make_client()
        for replica in policy.replicas:
            policy.restore(replica)

        async def main():
            for _ in range(5):
                await client.write([["+isa", "a", "b"]])

        run(main())
        assert len(fakes[PRIMARY].writes) == 5
        assert all(not fakes[addr].writes for addr in fakes
                   if addr != PRIMARY)

    def test_connection_lost_demotes_and_fails_over(self):
        client, fakes, policy, _ = make_client(scripts={
            REPLICA_A: [ConnectionLost("socket died")],
            REPLICA_B: [ConnectionLost("socket died")],
        })

        async def main():
            return await client.query("q[x ->> {Y}]")

        response = run(main())
        # Both replicas failed once, got demoted, and the read drained
        # to the primary.
        assert response["served_by"] == PRIMARY
        assert not policy.replicas[0].healthy
        assert not policy.replicas[1].healthy
        assert client.failovers == 2
        # Demoted endpoints stop receiving subsequent reads.
        before = {addr: len(fake.requests) for addr, fake in fakes.items()}
        run(client.query("q[x ->> {Y}]"))
        assert len(fakes[PRIMARY].requests) == before[PRIMARY] + 1
        assert len(fakes[REPLICA_A].requests) == before[REPLICA_A]
        assert len(fakes[REPLICA_B].requests) == before[REPLICA_B]

    def test_stale_replica_is_demoted_with_its_hint(self):
        stale = ReplicaStale("stale", "replica lagging",
                             retry_after_ms=0.01)
        client, fakes, policy, _ = make_client(scripts={
            REPLICA_A: [stale], REPLICA_B: [stale]})

        async def main():
            return await client.query("q[x ->> {Y}]")

        assert run(main())["served_by"] == PRIMARY
        assert not policy.replicas[0].healthy

    def test_success_restores_a_reprobed_endpoint(self):
        client, fakes, policy, clock = make_client(scripts={
            REPLICA_A: [RequestTimeout("timeout", "deadline")]})
        policy.demote(policy.replicas[1])      # keep routing on A

        async def main():
            await client.query("q[x ->> {Y}]")  # A times out, demoted

        run(main())
        assert not policy.replicas[0].healthy
        clock.now += 10.0                      # past both reprobes

        async def again():
            return await client.query("q[x ->> {Y}]")

        response = run(again())
        # The reprobe succeeded (script exhausted -> ok) and restored
        # whichever replica it landed on.
        assert response["served_by"] in (REPLICA_A, REPLICA_B)
        restored = dict(zip((REPLICA_A, REPLICA_B), policy.replicas))
        assert restored[response["served_by"]].healthy

    def test_non_retryable_errors_raise_without_demotion(self):
        client, fakes, policy, _ = make_client(scripts={
            REPLICA_A: [RequestError("bad_request", "no such op")],
            REPLICA_B: [RequestError("bad_request", "no such op")],
        })

        async def main():
            with pytest.raises(RequestError):
                await client.query("q[x ->> {Y}]")

        run(main())
        assert policy.replicas[0].healthy
        assert policy.replicas[1].healthy

    def test_exhausted_attempts_raise_the_last_error(self):
        lost = ConnectionLost("socket died")
        client, fakes, policy, _ = make_client(scripts={
            PRIMARY: [lost] * 10,
            REPLICA_A: [lost] * 10,
            REPLICA_B: [lost] * 10,
        })

        async def main():
            with pytest.raises(ConnectionLost):
                await client.query("q[x ->> {Y}]")

        run(main())
        assert client.failovers == 4           # one per attempt

    def test_write_failure_demotes_the_primary_for_reads(self):
        client, fakes, policy, _ = make_client(scripts={
            PRIMARY: [ConnectionLost("socket died")]})
        for replica in policy.replicas:
            policy.demote(replica)

        async def main():
            with pytest.raises(ConnectionLost):
                await client.write([["+isa", "a", "b"]])

        run(main())
        assert not policy.primary.healthy
