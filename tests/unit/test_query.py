"""Query API tests: answers, projections, denotations."""

import pytest

from repro.core.ast import Var
from repro.lang.parser import parse_query, parse_reference
from repro.oodb.database import Database
from repro.oodb.oid import NamedOid
from repro.query import Answer, Query


def n(value):
    return NamedOid(value)


@pytest.fixture
def db():
    db = Database()
    db.subclass("automobile", "vehicle")
    db.add_object("car1", classes=["automobile"],
                  scalars={"color": "red", "cylinders": 4})
    db.add_object("car2", classes=["automobile"],
                  scalars={"color": "blue", "cylinders": 6})
    db.add_object("p1", classes=["employee"], scalars={"age": 30},
                  sets={"vehicles": ["car1", "car2"]})
    return db


class TestAll:
    def test_string_query(self, db):
        rows = Query(db).all("X : employee..vehicles[color -> C]")
        assert {(r.value("X"), r.value("C")) for r in rows} == {
            ("p1", "red"), ("p1", "blue"),
        }

    def test_parsed_literals(self, db):
        literals = parse_query("X : automobile[cylinders -> 4]")
        rows = Query(db).all(literals)
        assert [r.value("X") for r in rows] == ["car1"]

    def test_single_reference_input(self, db):
        ref = parse_reference("X : automobile")
        assert Query(db).count(ref) == 2

    def test_projection(self, db):
        rows = Query(db).all("X : employee..vehicles[color -> C]",
                             variables=["C"])
        assert {r.value("C") for r in rows} == {"red", "blue"}
        assert all(set(r) == {"C"} for r in rows)

    def test_deduplication_after_projection(self, db):
        db.add_object("p2", classes=["employee"],
                      sets={"vehicles": ["car1"]})
        rows = Query(db).all("X : employee..vehicles[color -> red]",
                             variables=["X"])
        assert len(rows) == 2
        by_color = Query(db).all("X : employee..vehicles[color -> red]",
                                 variables=[])
        assert len(by_color) == 1  # one empty row: the query holds

    def test_sorted_deterministic(self, db):
        rows = Query(db).all("X : automobile[color -> C]")
        assert rows == sorted(rows, key=lambda a: a.sort_key())

    def test_aux_variables_hidden(self, db):
        rows = Query(db).all("p1..vehicles.color[C]")
        assert set(rows[0]) == {"C"}


class TestAskCountObjects:
    def test_ask(self, db):
        q = Query(db)
        assert q.ask("p1 : employee")
        assert not q.ask("p1 : automobile")
        assert q.ask("X : automobile[cylinders -> 6]")

    def test_count(self, db):
        assert Query(db).count("X : automobile") == 2

    def test_objects_ground(self, db):
        assert Query(db).objects("p1..vehicles[color -> red]") == {n("car1")}

    def test_objects_with_variables(self, db):
        got = Query(db).objects("X : automobile.color")
        assert got == {n("red"), n("blue")}

    def test_objects_of_name(self, db):
        assert Query(db).objects("car1") == {n("car1")}


class TestAnswer:
    def test_mapping_protocol(self):
        answer = Answer({"X": n("p1"), "Y": n(30)})
        assert answer["X"] == n("p1")
        assert len(answer) == 2
        assert set(answer) == {"X", "Y"}
        assert answer.values_dict() == {"X": "p1", "Y": 30}

    def test_equality_and_hash(self):
        a = Answer({"X": n(1)})
        b = Answer({"X": n(1)})
        assert a == b
        assert hash(a) == hash(b)
        assert a == {"X": n(1)}

    def test_virtual_value_renders_display(self):
        from repro.oodb.oid import VirtualOid

        answer = Answer({"B": VirtualOid(n("boss"), n("p1"))})
        assert answer.value("B") == "p1.boss"


class TestExplainFallback:
    def test_unsafe_negation_renders_fallback_instead_of_raising(self, db):
        report = Query(db).explain(
            "not X[color -> red], not X[color -> blue]")
        assert report.fallback is not None
        assert "unsafe negation" in report.fallback
        assert not report.steps
        rendered = report.render()
        assert "fallback:" in rendered
        assert "unsafe negation" in rendered

    def test_safe_query_has_no_fallback(self, db):
        report = Query(db).explain("X : automobile[color -> C]")
        assert report.fallback is None
        assert report.steps


class TestProgramMode:
    """Query(db, program=...): demand-driven query-over-rules."""

    PROGRAM = """
        X[flagged -> yes] <- X : employee..vehicles[color -> red].
        X[rides ->> {V}] <- X[vehicles ->> {V}].
        X[rides ->> {W}] <- X[rides ->> {V}], V[vehicles ->> {W}].
    """

    @pytest.fixture
    def program(self):
        from repro.lang.parser import parse_program

        return parse_program(self.PROGRAM)

    def test_magic_and_full_agree(self, db, program):
        for text in ("p1[flagged -> F]", "p1[rides ->> {V}]",
                     "X[rides ->> {car1}]"):
            magic = Query(db, program=program, magic=True).all(text)
            full = Query(db, program=program, magic=False).all(text)
            assert [a.sort_key() for a in magic] == \
                   [a.sort_key() for a in full]

    def test_base_database_is_not_mutated(self, db, program):
        facts_before = len(db.scalars)
        Query(db, program=program).all("p1[flagged -> F]")
        assert len(db.scalars) == facts_before

    def test_demand_runs_are_memoised_per_conjunction(self, db, program):
        query = Query(db, program=program)
        query.all("p1[flagged -> F]")
        first = query.last_demand
        query.count("p1[flagged -> F]")
        assert query.last_demand is first

    def test_cache_invalidates_when_base_facts_change(self, db, program):
        query = Query(db, program=program)
        assert not query.all("p2[flagged -> F]")
        db.add_object("car9", classes=["automobile"],
                      scalars={"color": "red"})
        db.add_object("p2", classes=["employee"],
                      sets={"vehicles": ["car9"]})
        assert query.all("p2[flagged -> F]")

    def test_explain_carries_the_demand_section(self, db, program):
        report = Query(db, program=program).explain("p1[rides ->> {V}]")
        assert report.demand is not None
        rendered = report.render()
        assert "demand:" in rendered
        assert "rewritten" in rendered
        assert "plan:" in rendered

    def test_objects_in_program_mode(self, db, program):
        objects = Query(db, program=program).objects("p1..rides")
        assert n("car1") in objects and n("car2") in objects
