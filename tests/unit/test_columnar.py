"""Columnar-executor tests: int kernels, mirror-first writes, drains.

The columnar executor runs plan steps over *int columns* of dense OID
surrogates.  These tests pin the per-slot kernel selection (int kernel
vs. boxed batch fallback), execution parity with the tuple-at-a-time
kernels, the mirror-first head emitter (facts land in the surrogate
mirror and back-fill the boxed table lazily), the surrogate-carrying
delta log, and the chunked ``exists`` short-circuit behind ``ask()``.
"""

import pytest

from repro.core.ast import Name, Var
from repro.engine import Engine
from repro.engine.batch import compile_batch_plan
from repro.engine.columnar import (
    IntDeltaIndex,
    columnar_head_emitter,
    compile_columnar_delta_plan,
    compile_columnar_plan,
)
from repro.engine.normalize import normalize_program
from repro.engine.planner import build_plan, relevant_bound
from repro.engine.profiler import EngineStats
from repro.engine.solve import execute_plan, exists, solve
from repro.errors import ScalarConflictError
from repro.flogic.atoms import SetMemberAtom
from repro.flogic.flatten import flatten_conjunction
from repro.lang.parser import parse_program, parse_query
from repro.oodb.database import Database
from repro.oodb.oid import NamedOid
from repro.query import Query


def n(value):
    return NamedOid(value)


@pytest.fixture
def db():
    db = Database()
    db.subclass("automobile", "vehicle")
    for i, color in enumerate(["red", "blue", "red"]):
        db.add_object(f"car{i}", classes=["automobile"],
                      scalars={"color": color, "cylinders": 4 if i else 6})
    db.add_object("p1", classes=["employee"], scalars={"age": 30},
                  sets={"vehicles": ["car0", "car1"]})
    db.add_object("p2", classes=["employee"], scalars={"age": 40},
                  sets={"vehicles": ["car2"]})
    return db


def atoms_for(text):
    return flatten_conjunction(parse_query(text))


def columnar(db, text, bound=()):
    atoms = atoms_for(text)
    plan = build_plan(db, atoms, bound)
    return compile_columnar_plan(db, plan), plan


def answer_set(bindings):
    return {frozenset(b.items()) for b in bindings}


class TestKernelSelection:
    def test_probe_and_merge_join_kernels(self, db):
        compiled, _ = columnar(db, "Y[color -> blue], X[vehicles ->> {Y}]")
        assert compiled.kernel_names == ("int scalar mr-probe",
                                         "int set mm merge-join")

    def test_scalar_merge_join_on_bound_result(self, db):
        compiled, _ = columnar(db, "X[cylinders -> N], Y[cylinders -> N]")
        assert compiled.kernel_names == ("int scalar m-scan",
                                         "int scalar mr merge-join")

    def test_subject_navigation_kernels(self, db):
        atoms = atoms_for("X[vehicles ->> {V}], V[color -> C]")
        plan = build_plan(db, atoms, {Var("X")})
        compiled = compile_columnar_plan(db, plan)
        assert compiled.kernel_names == ("int set iter", "int scalar get")

    def test_magic_guard_compiles_to_semi_join(self, db):
        guard = SetMemberAtom(Name("magic$scalar$age$bf"),
                              Name("__demand__"), (), Var("X"))
        db.assert_set_member(db.obj("magic$scalar$age$bf"),
                             db.obj("__demand__"), (), db.obj("p1"))
        atoms = atoms_for("X[age -> A]") + (guard,)
        plan = build_plan(db, atoms, {Var("X")})
        compiled = compile_columnar_plan(db, plan)
        assert "int semi-join (magic)" in compiled.kernel_names

    def test_non_oid_shapes_fall_back_to_boxed_kernels(self, db):
        # isa steps and comparisons have no surrogate mirror; their
        # slots stay boxed and downstream reads deref transparently.
        compiled, _ = columnar(db, "X : employee, X.age >= 35")
        assert compiled.kernel_names[0] == "batch isa members"
        assert "batch compare" in compiled.kernel_names

    def test_unindexed_tables_fall_back_to_boxed_kernels(self):
        plain = Database(indexed=False)
        plain.add_object("p1", scalars={"age": 30}, sets={"kids": ["p2"]})
        compiled, _ = columnar(plain, "X[kids ->> {V}], V[age -> A]")
        assert all(name.startswith("batch") for name in compiled.kernel_names)

    def test_memoised_separately_from_batch_lowering(self, db):
        _, plan = columnar(db, "X[vehicles ->> {V}]")
        assert (compile_columnar_plan(db, plan)
                is compile_columnar_plan(db, plan))
        assert (compile_batch_plan(db, plan)
                is not compile_columnar_plan(db, plan))


class TestExecutionParity:
    QUERIES = [
        "X : employee..vehicles[color -> red]",
        "X : employee..vehicles[color -> C]",
        "X : employee, X.age >= 35",
        "X[color -> X]",                     # repeated var: scan, not probe
        "X : X",                             # repeated var in isa
        "X.self[Y]",                         # builtin over the universe
        "p3[M ->> {V}], V[color -> red]",    # empty subject bucket
        "X[vehicles ->> p2..vehicles]",      # superset bridge
        "X : employee, not X[age -> 30]",    # negation bridge
        "X[M ->> {V}]",                      # unbound method enumeration
        "Y[cylinders -> 6]",                 # single probe
        "Y[color -> blue], X[vehicles ->> {Y}]",   # merge join
        "X[cylinders -> N], Y[cylinders -> N]",    # scalar merge join
    ]

    def test_same_answers_as_other_executors(self, db):
        for text in self.QUERIES:
            atoms = atoms_for(text)
            col = answer_set(solve(db, atoms, executor="columnar"))
            tuple_ = answer_set(solve(db, atoms, executor="compiled"))
            assert col == tuple_, text

    def test_counters_match_tuple_executor(self, db):
        for text in self.QUERIES:
            atoms = atoms_for(text)
            plan = build_plan(db, atoms, ())
            col_counters = [0] * len(plan.steps)
            tuple_counters = [0] * len(plan.steps)
            list(execute_plan(db, plan, {}, counters=col_counters,
                              executor="columnar"))
            list(execute_plan(db, plan, {}, counters=tuple_counters,
                              executor="compiled"))
            assert col_counters == tuple_counters, text

    def test_seed_binding_is_interned_and_resolved(self, db):
        atoms = atoms_for("X[vehicles ->> {V}], V[color -> C]")
        bound = relevant_bound(atoms, {Var("X")})
        plan = build_plan(db, atoms, bound)
        compiled = compile_columnar_plan(db, plan)
        rows = list(compiled.execute({Var("X"): n("p1")}))
        assert all(row[Var("X")] == n("p1") for row in rows)
        assert {row[Var("V")] for row in rows} == {n("car0"), n("car1")}
        assert all(isinstance(row[Var("C")], NamedOid) for row in rows)


class TestExistsShortCircuit:
    @pytest.fixture
    def long_chain(self):
        db = Database()
        for i in range(600):
            db.add_object(f"n{i}", scalars={"next": f"n{i + 1}"})
        return db

    def test_exists_stops_at_first_surviving_row(self, long_chain):
        atoms = atoms_for("X[next -> Y], Y[next -> Z]")
        plan = build_plan(long_chain, atoms, ())
        for executor in ("columnar", "batch"):
            stats = EngineStats()
            assert exists(long_chain, atoms, plan=plan, executor=executor,
                          stats=stats)
            short = stats.batch_rows
            counters = [0] * len(plan.steps)
            list(execute_plan(long_chain, plan, {}, counters=counters,
                              executor=executor))
            full = sum(counters)
            # A full execution pushes ~1200 rows through the two steps.
            # The chunked exists cannot avoid the opening scan, but
            # after it only chunk-sized slices flow: batch_rows stops
            # growing once the first surviving row reaches the end.
            assert full > 1000
            assert short < full, executor
            assert short <= counters[0] + 2 * 64, executor

    def test_unsatisfiable_exists_still_scans_everything(self, long_chain):
        atoms = atoms_for("X[next -> Y], Y[missing -> Z]")
        stats = EngineStats()
        assert not exists(long_chain, atoms, executor="columnar",
                          stats=stats)

    def test_query_ask_uses_plan_level_exists(self, long_chain):
        query = Query(long_chain, executor="columnar")
        assert query.ask("X[next -> Y], Y[next -> Z]")
        assert not query.ask("X[next -> Y], Y[missing -> Z]")


class TestHeadEmitter:
    def rule_and_cplan(self, db, text):
        rule = normalize_program(parse_program(text))[0]
        plan = build_plan(db, rule.body, ())
        return rule, compile_columnar_plan(db, plan)

    def test_set_head_writes_mirror_first(self, db):
        rule, cplan = self.rule_and_cplan(
            db, "X[reach ->> {V}] <- X[vehicles ->> {V}].")
        emit = columnar_head_emitter(db, rule, cplan)
        assert emit is not None
        x_slot, v_slot = cplan.slots[Var("X")], cplan.slots[Var("V")]
        assert cplan.reps[x_slot] and cplan.reps[v_slot]
        cols = [None] * cplan.nslots
        p1, car0 = db.intern(n("p1")), db.intern(n("car0"))
        cols[x_slot], cols[v_slot] = [p1], [car0]
        log = []
        emit(cols, 1, log)
        # The log entry carries the surrogate pair at positions 5-6.
        assert log == [("set", n("reach"), n("p1"), (), n("car0"),
                        p1, car0)]
        reach = db.intern(n("reach"))
        view = db.sets.surrogate_view(db.interner)
        assert view.apps[reach][p1] == {car0}
        # The boxed table back-fills on first read and agrees.
        assert db.sets.get(n("reach"), n("p1")) == frozenset({n("car0")})
        # Re-emitting is a pure int-space dedup: no new log entries.
        log2 = []
        emit(cols, 1, log2)
        assert log2 == []

    def test_scalar_conflicts_raise_from_the_mirror(self, db):
        rule, cplan = self.rule_and_cplan(
            db, "X[age -> V] <- X[cylinders -> V].")
        emit = columnar_head_emitter(db, rule, cplan)
        assert emit is not None
        x_slot, v_slot = cplan.slots[Var("X")], cplan.slots[Var("V")]
        cols = [None] * cplan.nslots
        cols[x_slot] = [db.intern(n("p1"))]
        cols[v_slot] = [db.intern(n(99))]
        with pytest.raises(ScalarConflictError):
            emit(cols, 1, [])

    def test_virtual_creating_head_has_no_emitter(self, db):
        rule, cplan = self.rule_and_cplan(
            db, "X.boss[city -> C] <- X[age -> C].")
        assert columnar_head_emitter(db, rule, cplan) is None

    def test_open_change_log_disables_the_emitter(self, db):
        db.begin_changes()
        rule, cplan = self.rule_and_cplan(
            db, "X[reach ->> {V}] <- X[vehicles ->> {V}].")
        assert columnar_head_emitter(db, rule, cplan) is None


class TestDeferredDrain:
    def test_int_writer_defers_boxed_backfill(self, db):
        db.sets.surrogate_view(db.interner)
        marked = db.intern(db.obj("marked"))
        write = db.sets.int_writer(n("marked"), marked)
        p1, car0 = db.intern(n("p1")), db.intern(n("car0"))
        assert write(p1, car0)
        assert not write(p1, car0)  # int-space duplicate
        assert db.sets._pending
        # Any boxed entry point drains first; the fact is visible.
        assert db.sets.get(n("marked"), n("p1")) == frozenset({n("car0")})
        assert not db.sets._pending

    def test_scalar_writer_conflict_semantics(self, db):
        db.scalars.surrogate_view(db.interner)
        rank = db.intern(db.obj("rank"))
        write = db.scalars.int_writer(n("rank"), rank)
        p1 = db.intern(n("p1"))
        assert write(p1, db.intern(n(1)))
        assert not write(p1, db.intern(n(1)))  # same result: no-op
        with pytest.raises(ScalarConflictError):
            write(p1, db.intern(n(2)))
        assert db.scalars.get(n("rank"), n("p1"), ()) == n(1)

    def test_clone_drains_pending_writes(self, db):
        db.sets.surrogate_view(db.interner)
        marked = db.intern(db.obj("marked"))
        write = db.sets.int_writer(n("marked"), marked)
        write(db.intern(n("p2")), db.intern(n("car2")))
        copy = db.clone()
        assert copy.sets.get(n("marked"), n("p2")) == frozenset({n("car2")})


class TestIntDeltaIndex:
    def test_carried_surrogates_skip_reinterning(self, db):
        reach = n("reach")
        p1 = db.intern(n("p1"))
        car0 = db.intern(n("car0"))
        entries = [
            ("set", reach, n("p1"), (), n("car0"), p1, car0),  # stamped
            ("set", reach, n("p2"), (), n("car2")),            # boxed
            ("scalar", n("age"), n("p1"), (), n(30)),          # wrong kind
            ("isa", n("p1"), n("flagged")),                    # wrong kind
        ]
        index = IntDeltaIndex(entries, db.interner)
        subjects, results = index.int_bucket("set", reach)
        assert subjects == [p1, db.intern(n("p2"))]
        assert results == [car0, db.intern(n("car2"))]
        # Memoised: the same bucket object serves every rule position.
        assert index.int_bucket("set", reach) is index.int_bucket(
            "set", reach)


class TestEngineIntegration:
    PROGRAM = """
        X[reach ->> {Y}] <- X[next -> Y].
        X[reach ->> {Z}] <- X[reach ->> {Y}], Y[next -> Z].
    """

    @pytest.fixture
    def chain_db(self):
        db = Database()
        for i in range(8):
            db.add_object(f"n{i}", scalars={"next": f"n{i + 1}"})
        return db

    def _sets(self, db):
        return {(key, frozenset(bucket)) for key, bucket in db.sets.items()}

    def test_fixpoint_matches_batch_and_compiled(self, chain_db):
        program = parse_program(self.PROGRAM)
        engines = {executor: Engine(chain_db, program, executor=executor)
                   for executor in ("columnar", "batch", "compiled")}
        results = {executor: self._sets(engine.run())
                   for executor, engine in engines.items()}
        assert results["columnar"] == results["batch"] == results["compiled"]
        col, batch = engines["columnar"], engines["batch"]
        assert col.stats.tuples == batch.stats.tuples
        assert col.stats.firings == batch.stats.firings
        assert col.stats.derived_total == batch.stats.derived_total

    def test_explain_names_int_kernels(self, chain_db):
        engine = Engine(chain_db, parse_program(self.PROGRAM),
                        executor="columnar")
        engine.run()
        kernels = [step.kernel for report in engine.plan_reports()
                   for step in report.steps]
        assert kernels
        assert any(kernel.startswith("int ") for kernel in kernels)

    def test_delta_plan_consumes_stamped_log_entries(self, chain_db):
        atom = SetMemberAtom(Name("reach"), Var("X"), (), Var("Y"))
        rest = atoms_for("Y[next -> Z]")
        bound = relevant_bound(rest, atom.variables())
        plan = build_plan(chain_db, rest, bound)
        delta_plan = compile_columnar_delta_plan(chain_db, atom, plan)
        x = chain_db.intern(n("n0"))
        y = chain_db.intern(n("n1"))
        delta = IntDeltaIndex(
            [("set", n("reach"), n("n0"), (), n("n1"), x, y)],
            chain_db.interner)
        rows = answer_set(delta_plan.execute(delta))
        assert rows == {frozenset({(Var("X"), n("n0")), (Var("Y"), n("n1")),
                                   (Var("Z"), n("n2"))})}
