"""Head realisation tests: virtual objects, assertions, conflicts."""

import pytest

from repro.core.ast import Var
from repro.engine.heads import HeadRealizer
from repro.engine.normalize import normalize_rule
from repro.errors import EvaluationError, ResourceLimitError, ScalarConflictError
from repro.lang.parser import parse_reference, parse_rule
from repro.oodb.database import Database
from repro.oodb.oid import NamedOid, VirtualOid


def n(value):
    return NamedOid(value)


def head_of(text: str):
    """Parse `text.` as a rule head through normalisation (body X:any)."""
    rule = normalize_rule(parse_rule(text))
    return rule.head


@pytest.fixture
def db():
    db = Database()
    db.add_object("p1", classes=["employee"], scalars={"worksFor": "cs1"})
    return db


class TestScalarAssertions:
    def test_molecule_filter_asserts_fact(self, db):
        realizer = HeadRealizer(db)
        obj, changed = realizer.realize(
            parse_reference("p1[age -> 30]"), {})
        assert obj == n("p1")
        assert changed
        assert db.scalar_apply(n("age"), n("p1")) == n(30)
        assert realizer.log == [("scalar", n("age"), n("p1"), (), n(30))]

    def test_idempotent_realization(self, db):
        realizer = HeadRealizer(db)
        realizer.realize(parse_reference("p1[age -> 30]"), {})
        _, changed = realizer.realize(parse_reference("p1[age -> 30]"), {})
        assert not changed

    def test_conflict_detected(self, db):
        realizer = HeadRealizer(db)
        realizer.realize(parse_reference("p1[age -> 30]"), {})
        with pytest.raises(ScalarConflictError):
            realizer.realize(parse_reference("p1[age -> 31]"), {})

    def test_variable_resolution(self, db):
        realizer = HeadRealizer(db)
        obj, _ = realizer.realize(
            parse_reference("X[age -> A]"),
            {Var("X"): n("p1"), Var("A"): n(30)},
        )
        assert db.scalar_apply(n("age"), n("p1")) == n(30)

    def test_unbound_variable_is_an_error(self, db):
        realizer = HeadRealizer(db)
        with pytest.raises(EvaluationError, match="unbound"):
            realizer.realize(parse_reference("X[age -> 30]"), {})


class TestSetAndIsaAssertions:
    def test_enum_filter_adds_members(self, db):
        realizer = HeadRealizer(db)
        realizer.realize(parse_reference("p1[kids ->> {a, b}]"), {})
        assert db.set_apply(n("kids"), n("p1")) == {n("a"), n("b")}

    def test_isa_assertion(self, db):
        realizer = HeadRealizer(db)
        _, changed = realizer.realize(parse_reference("p1 : manager"), {})
        assert changed
        assert db.isa(n("p1"), n("manager"))
        assert realizer.log[-1] == ("isa", n("p1"), n("manager"))


class TestVirtualObjects:
    def test_path_creates_virtual_when_undefined(self, db):
        realizer = HeadRealizer(db)
        obj, changed = realizer.realize(parse_reference("p1.boss"), {})
        assert obj == VirtualOid(n("boss"), n("p1"))
        assert changed
        assert realizer.virtuals_created == 1
        assert db.scalar_apply(n("boss"), n("p1")) == obj

    def test_existing_method_is_referenced_not_recreated(self, db):
        db.add_object("p1", scalars={"boss": "mary"})
        realizer = HeadRealizer(db)
        obj, changed = realizer.realize(parse_reference("p1.boss"), {})
        assert obj == n("mary")
        assert not changed

    def test_recreation_is_idempotent(self, db):
        realizer = HeadRealizer(db)
        first, _ = realizer.realize(parse_reference("p1.boss"), {})
        second, changed = realizer.realize(parse_reference("p1.boss"), {})
        assert first == second
        assert not changed
        assert realizer.virtuals_created == 1

    def test_filters_apply_to_virtual(self, db):
        realizer = HeadRealizer(db)
        head = head_of("X.boss[worksFor -> D] <- X : employee[worksFor -> D].")
        obj, _ = realizer.realize(
            head, {Var("X"): n("p1"), Var("D"): n("cs1")})
        assert db.scalar_apply(n("worksFor"), obj) == n("cs1")

    def test_computed_method_object(self, db):
        head = head_of("X[(M.tc) ->> {Y}] <- X[M ->> {Y}].")
        realizer = HeadRealizer(db)
        realizer.realize(head, {Var("X"): n("peter"), Var("M"): n("kids"),
                                Var("Y"): n("tim")})
        tc_kids = VirtualOid(n("tc"), n("kids"))
        assert db.scalar_apply(n("tc"), n("kids")) == tc_kids
        assert db.set_apply(tc_kids, n("peter")) == {n("tim")}

    def test_depth_limit(self, db):
        realizer = HeadRealizer(db, max_virtual_depth=3)
        ref = parse_reference("p1.b.b.b.b")
        with pytest.raises(ResourceLimitError, match="nesting"):
            realizer.realize(ref, {})

    def test_self_in_head_is_identity(self, db):
        realizer = HeadRealizer(db)
        obj, changed = realizer.realize(parse_reference("p1.self"), {})
        assert obj == n("p1")
        assert not changed
        assert realizer.virtuals_created == 0

    def test_self_not_redefinable(self, db):
        realizer = HeadRealizer(db)
        with pytest.raises(EvaluationError, match="identity"):
            realizer.realize(parse_reference("p1[self -> mary]"), {})

    def test_parameterised_virtual(self, db):
        realizer = HeadRealizer(db)
        obj, _ = realizer.realize(parse_reference("p1.review@(1994)"), {})
        assert obj == VirtualOid(n("review"), n("p1"), (n(1994),))
