"""Database facade tests: names, aliases, builtins, loading, cloning."""

import pytest

from repro.core.builtins import SELF_OID
from repro.oodb.database import Database
from repro.oodb.oid import NamedOid


def n(value):
    return NamedOid(value)


class TestNames:
    def test_lookup_registers_in_universe(self):
        db = Database()
        oid = db.lookup_name("mary")
        assert oid == n("mary")
        assert oid in db

    def test_alias_makes_names_codenote(self):
        db = Database()
        db.add_object("mary", scalars={"age": 30})
        db.alias("maria", "mary")
        assert db.lookup_name("maria") == db.lookup_name("mary")
        assert db.scalar_apply(n("age"), db.lookup_name("maria")) == n(30)


class TestBuiltins:
    def test_self_is_identity(self):
        db = Database()
        mary = db.lookup_name("mary")
        assert db.scalar_apply(SELF_OID, mary) == mary

    def test_self_with_args_is_undefined(self):
        db = Database()
        mary = db.lookup_name("mary")
        assert db.scalar_apply(SELF_OID, mary, (n(1),)) is None

    def test_integer_and_string_value_classes(self):
        db = Database()
        assert db.isa(n(42), n("integer"))
        assert db.isa(n("abc"), n("string"))
        assert not db.isa(n(42), n("string"))
        assert not db.isa(n("abc"), n("integer"))

    def test_value_classes_not_enumerable(self):
        db = Database()
        db.lookup_name(42)
        assert db.members(n("integer")) == frozenset()

    def test_declared_and_builtin_isa_combine(self):
        db = Database()
        db.subclass("evenNumber", "integer")
        # hierarchy edge works alongside builtin membership
        assert db.isa(n("evenNumber"), n("integer"))


class TestLoading:
    def test_add_object_full(self):
        db = Database()
        db.subclass("automobile", "vehicle")
        db.add_object("car1", classes=["automobile"],
                      scalars={"color": "red"}, sets={"tags": ["fast", "old"]})
        car = db.lookup_name("car1")
        assert db.isa(car, n("vehicle"))
        assert db.scalar_apply(n("color"), car) == n("red")
        assert db.set_apply(n("tags"), car) == {n("fast"), n("old")}

    def test_add_object_extends_existing(self):
        db = Database()
        db.add_object("p1", scalars={"age": 30})
        db.add_object("p1", sets={"vehicles": ["car1"]})
        p1 = db.lookup_name("p1")
        assert db.scalar_apply(n("age"), p1) == n(30)
        assert db.set_apply(n("vehicles"), p1) == {n("car1")}

    def test_repr_mentions_sizes(self):
        db = Database()
        db.add_object("p1", classes=["c"], scalars={"a": 1})
        assert "scalar=1" in repr(db)


class TestClone:
    def test_clone_is_deep(self):
        db = Database()
        db.add_object("p1", classes=["employee"], scalars={"age": 30},
                      sets={"vehicles": ["car1"]})
        copy = db.clone()
        copy.add_object("p2", classes=["employee"])
        copy.add_object("p1", sets={"vehicles": ["car2"]})
        assert db.lookup_name("p2") in copy
        assert n("car2") not in db.set_apply(n("vehicles"), n("p1"))
        assert not db.members(n("employee")) == copy.members(n("employee"))

    def test_clone_preserves_aliases(self):
        db = Database()
        db.add_object("mary", scalars={"age": 30})
        db.alias("maria", "mary")
        copy = db.clone()
        assert copy.lookup_name("maria") == n("mary")

    def test_clone_carries_data_version(self):
        # Regression: cloned method tables and hierarchy used to restart
        # their version counters, so a clone's data_version could equal
        # a version the source had when its facts were *different* --
        # and a plan/catalog cache keyed on that value would serve a
        # stale entry for the clone's data.
        db = Database()
        db.add_object("p1", classes=["employee"], scalars={"age": 30},
                      sets={"vehicles": ["car1", "car2"]})
        db.scalars.remove(n("age"), n("p1"), ())
        assert db.clone().data_version() == db.data_version()

    def test_clone_version_does_not_collide_with_source_history(self):
        from repro.engine.planner import PlanCache
        from repro.flogic.atoms import ScalarAtom
        from repro.core.ast import Name, Var

        db = Database()
        db.add_object("car1", scalars={"color": "red"})
        seen = db.data_version()
        db.add_object("car2", scalars={"color": "red"})
        clone = db.clone()
        clone.scalars.remove(n("color"), n("car2"), ())
        # The clone now holds different facts than the source did at any
        # earlier version; its version must not replay one of those.
        assert clone.data_version() != seen
        # And a version-tracking plan cache warmed on the source must
        # re-plan (not hit) when pointed at the mutated clone.
        cache = PlanCache()
        atoms = (ScalarAtom(Name("color"), Var("Y"), (), Name("red")),)
        cache.get(db, atoms, frozenset())
        cache.get(clone, atoms, frozenset())
        assert cache.misses == 2

    def test_virtual_count(self):
        from repro.oodb.oid import VirtualOid

        db = Database()
        db.register(VirtualOid(n("boss"), n("p1")))
        assert db.virtual_count() == 1
