"""Database facade tests: names, aliases, builtins, loading, cloning."""

import pytest

from repro.core.builtins import SELF_OID
from repro.oodb.database import Database
from repro.oodb.oid import NamedOid


def n(value):
    return NamedOid(value)


class TestNames:
    def test_lookup_registers_in_universe(self):
        db = Database()
        oid = db.lookup_name("mary")
        assert oid == n("mary")
        assert oid in db

    def test_alias_makes_names_codenote(self):
        db = Database()
        db.add_object("mary", scalars={"age": 30})
        db.alias("maria", "mary")
        assert db.lookup_name("maria") == db.lookup_name("mary")
        assert db.scalar_apply(n("age"), db.lookup_name("maria")) == n(30)


class TestBuiltins:
    def test_self_is_identity(self):
        db = Database()
        mary = db.lookup_name("mary")
        assert db.scalar_apply(SELF_OID, mary) == mary

    def test_self_with_args_is_undefined(self):
        db = Database()
        mary = db.lookup_name("mary")
        assert db.scalar_apply(SELF_OID, mary, (n(1),)) is None

    def test_integer_and_string_value_classes(self):
        db = Database()
        assert db.isa(n(42), n("integer"))
        assert db.isa(n("abc"), n("string"))
        assert not db.isa(n(42), n("string"))
        assert not db.isa(n("abc"), n("integer"))

    def test_value_classes_not_enumerable(self):
        db = Database()
        db.lookup_name(42)
        assert db.members(n("integer")) == frozenset()

    def test_declared_and_builtin_isa_combine(self):
        db = Database()
        db.subclass("evenNumber", "integer")
        # hierarchy edge works alongside builtin membership
        assert db.isa(n("evenNumber"), n("integer"))


class TestLoading:
    def test_add_object_full(self):
        db = Database()
        db.subclass("automobile", "vehicle")
        db.add_object("car1", classes=["automobile"],
                      scalars={"color": "red"}, sets={"tags": ["fast", "old"]})
        car = db.lookup_name("car1")
        assert db.isa(car, n("vehicle"))
        assert db.scalar_apply(n("color"), car) == n("red")
        assert db.set_apply(n("tags"), car) == {n("fast"), n("old")}

    def test_add_object_extends_existing(self):
        db = Database()
        db.add_object("p1", scalars={"age": 30})
        db.add_object("p1", sets={"vehicles": ["car1"]})
        p1 = db.lookup_name("p1")
        assert db.scalar_apply(n("age"), p1) == n(30)
        assert db.set_apply(n("vehicles"), p1) == {n("car1")}

    def test_repr_mentions_sizes(self):
        db = Database()
        db.add_object("p1", classes=["c"], scalars={"a": 1})
        assert "scalar=1" in repr(db)


class TestClone:
    def test_clone_is_deep(self):
        db = Database()
        db.add_object("p1", classes=["employee"], scalars={"age": 30},
                      sets={"vehicles": ["car1"]})
        copy = db.clone()
        copy.add_object("p2", classes=["employee"])
        copy.add_object("p1", sets={"vehicles": ["car2"]})
        assert db.lookup_name("p2") in copy
        assert n("car2") not in db.set_apply(n("vehicles"), n("p1"))
        assert not db.members(n("employee")) == copy.members(n("employee"))

    def test_clone_preserves_aliases(self):
        db = Database()
        db.add_object("mary", scalars={"age": 30})
        db.alias("maria", "mary")
        copy = db.clone()
        assert copy.lookup_name("maria") == n("mary")

    def test_virtual_count(self):
        from repro.oodb.oid import VirtualOid

        db = Database()
        db.register(VirtualOid(n("boss"), n("p1")))
        assert db.virtual_count() == 1
