"""Rule normalisation tests: hoisting, safety, predicate extraction."""

import pytest

from repro.core.ast import (
    Molecule,
    Name,
    Paren,
    Path,
    ScalarFilter,
    SetEnumFilter,
    Var,
)
from repro.engine.normalize import (
    COMPUTED,
    ISA_PRED,
    normalize_program,
    normalize_rule,
    pred_matches,
)
from repro.errors import HeadError
from repro.flogic.atoms import (
    ScalarAtom,
    SetMemberAtom,
    SupersetAtom,
)
from repro.lang.parser import parse_program, parse_rule


def norm(text: str):
    return normalize_rule(parse_rule(text))


class TestHeadChecks:
    def test_set_valued_head_rejected(self):
        with pytest.raises(HeadError, match="set-valued"):
            norm("X..assistants[a -> 1] <- X : person.")

    def test_unsafe_head_variable_rejected(self):
        with pytest.raises(HeadError, match="unsafe"):
            norm("X[a -> Y] <- X : person.")

    def test_superset_source_vars_count_as_bound(self):
        # X is bound by enumerating the superset source.
        rule = norm("X[ok -> yes] <- p2[friends ->> X..assistants].")
        assert rule.body  # no HeadError raised

    def test_fact_head_must_be_ground(self):
        with pytest.raises(HeadError, match="unsafe"):
            norm("X[a -> 1].")


class TestHoisting:
    def test_head_read_becomes_body_atom(self):
        rule = norm("X.address[street -> X.street] <- X : person.")
        street_atoms = [a for a in rule.body if isinstance(a, ScalarAtom)
                        and a.method == Name("street")]
        assert len(street_atoms) == 1
        # and the head filter now holds the hoisted variable
        molecule = rule.head
        assert isinstance(molecule, Molecule)
        assert molecule.filters[0].result == street_atoms[0].result

    def test_head_superset_filter_becomes_enum(self):
        rule = norm("p2[friends ->> p1..assistants] <- p1 : person.")
        molecule = rule.head
        assert isinstance(molecule.filters[0], SetEnumFilter)
        members = [a for a in rule.body if isinstance(a, SetMemberAtom)]
        assert len(members) == 1

    def test_method_position_not_hoisted(self):
        rule = norm("X[(M.tc) ->> {Y}] <- X[M ->> {Y}].")
        filt = rule.head.filters[0]
        assert isinstance(filt.method, Paren)
        assert isinstance(filt.method.inner, Path)

    def test_spine_path_kept(self):
        rule = norm("X.boss[worksFor -> D] <- X : employee[worksFor -> D].")
        assert isinstance(rule.head, Molecule)
        assert isinstance(rule.head.base, Path)
        assert rule.head.base.method == Name("boss")

    def test_body_superset_stays_superset(self):
        rule = norm("X[ok -> yes] <- X[friends ->> p1..assistants].")
        assert any(isinstance(a, SupersetAtom) for a in rule.body)


class TestPredicates:
    def test_defines_from_spine_and_filters(self):
        rule = norm("X.boss[worksFor -> D] : manager "
                    "<- X : employee[worksFor -> D].")
        assert ("scalar", "boss") in rule.defines
        assert ("scalar", "worksFor") in rule.defines
        assert ISA_PRED in rule.defines

    def test_defines_computed_method(self):
        rule = norm("X[(M.tc) ->> {Y}] <- X[M ->> {Y}].")
        assert ("set", COMPUTED) in rule.defines
        assert ("scalar", "tc") in rule.defines

    def test_weak_reads(self):
        rule = norm("X[a -> 1] <- X : person, X[b -> 2], X[c ->> {Y}].")
        assert ("scalar", "b") in rule.weak_reads
        assert ("set", "c") in rule.weak_reads
        assert ISA_PRED in rule.weak_reads

    def test_strong_reads_from_superset_source(self):
        rule = norm("X[ok -> yes] <- X[friends ->> p1..assistants].")
        assert ("set", "assistants") in rule.strong_reads
        assert ("set", "friends") in rule.weak_reads

    def test_self_is_invisible(self):
        rule = norm("X[a -> 1] <- X.color[Z], Z = red.")
        assert ("scalar", "self") not in rule.weak_reads

    def test_variable_method_read_is_wildcard(self):
        rule = norm("X[a -> 1] <- X[M ->> {Y}].")
        assert ("set", None) in rule.weak_reads


class TestPredMatches:
    def test_names(self):
        assert pred_matches(("set", "kids"), ("set", "kids"))
        assert not pred_matches(("set", "kids"), ("set", "desc"))
        assert not pred_matches(("set", "kids"), ("scalar", "kids"))

    def test_variable_wildcard(self):
        assert pred_matches(("set", None), ("set", "kids"))
        assert pred_matches(("set", "kids"), ("set", None))

    def test_computed_matches_computed_not_names(self):
        assert pred_matches(("set", COMPUTED), ("set", COMPUTED))
        assert not pred_matches(("set", COMPUTED), ("set", "kids"))
        assert not pred_matches(("set", "kids"), ("set", COMPUTED))
        assert pred_matches(("set", COMPUTED), ("set", None))


class TestProgram:
    def test_normalize_program_keeps_order(self):
        program = parse_program("""
            p1 : person.
            X[a -> 1] <- X : person.
        """)
        rules = normalize_program(program)
        assert rules[0].is_fact
        assert not rules[1].is_fact
