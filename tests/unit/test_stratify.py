"""Stratification tests: strata assignment and rejection."""

import pytest

from repro.engine.normalize import normalize_program
from repro.engine.stratify import assign_strata, dependency_edges, stratify
from repro.errors import StratificationError
from repro.lang.parser import parse_program


def strata_of(text: str):
    rules = normalize_program(parse_program(text))
    return assign_strata(rules)


class TestAssignment:
    def test_independent_rules_share_stratum_zero(self):
        assert strata_of("""
            X[a -> 1] <- X : person.
            X[b -> 2] <- X : animal.
        """) == [0, 0]

    def test_recursion_is_one_stratum(self):
        # The desc rules (6.4) are plain recursion: no superset needed.
        assert strata_of("""
            X[desc ->> {Y}] <- X[kids ->> {Y}].
            X[desc ->> {Y}] <- X..desc[kids ->> {Y}].
        """) == [0, 0]

    def test_superset_reader_above_definer(self):
        strata = strata_of("""
            p1[assistants ->> {Y}] <- Y : helper.
            p2[ok -> yes] <- p2[friends ->> p1..assistants].
        """)
        assert strata[1] == strata[0] + 1

    def test_chain_of_supersets(self):
        strata = strata_of("""
            a[s1 ->> {X}] <- X : c0.
            b[s2 ->> {X}] <- X[q ->> a..s1].
            c[s3 ->> {X}] <- X[r ->> b..s2].
        """)
        assert strata == [0, 1, 2]

    def test_facts_sit_with_their_predicate(self):
        strata = strata_of("""
            p1[assistants ->> {a1}].
            p2[ok -> yes] <- p2[friends ->> p1..assistants].
        """)
        assert strata == [0, 1]

    def test_computed_method_superset_does_not_conflict_with_named(self):
        # The university pattern: a named set method defined from a
        # superset over a computed closure method.
        strata = strata_of("""
            S[readyFor ->> {C}] <-
                S : student, C : course, S[enrolled ->> C..(prereq.tc)].
        """)
        assert strata == [0]


class TestRejection:
    def test_self_strong_dependency(self):
        with pytest.raises(StratificationError, match="itself"):
            strata_of("""
                X[friends ->> {Y}] <- X[ok ->> p1..friends], Y : person.
            """)

    def test_strong_cycle(self):
        with pytest.raises(StratificationError, match="stratifiable"):
            strata_of("""
                X[a ->> {Y}] <- X[q ->> p1..b], Y : c.
                X[b ->> {Y}] <- X[r ->> p1..a], Y : c.
            """)

    def test_generic_rules_with_named_superset_conflict(self):
        # A variable-method head defines ANY set method, so a strong
        # read of a named set in the same program cannot stratify below
        # it when they are mutually dependent.
        with pytest.raises(StratificationError):
            strata_of("""
                X[M ->> {Y}] <- X[seed ->> {M}], Y[t ->> p1..out].
                p1[out ->> {Z}] <- Z[M2 ->> {w}].
            """)


class TestGrouping:
    def test_stratify_groups_and_orders(self):
        rules = normalize_program(parse_program("""
            p1[assistants ->> {a1}].
            p2[ok -> yes] <- p2[friends ->> p1..assistants].
            p1[assistants ->> {a2}].
        """))
        groups = stratify(rules)
        assert len(groups) == 2
        assert [len(g) for g in groups] == [2, 1]
        # program order preserved within a stratum
        assert groups[0][0] is rules[0]
        assert groups[0][1] is rules[2]

    def test_empty_program(self):
        assert stratify([]) == []

    def test_edges_structure(self):
        rules = normalize_program(parse_program("""
            X[a ->> {Y}] <- X[kids ->> {Y}].
            X[ok -> yes] <- X[q ->> p1..a].
        """))
        edges = dependency_edges(rules)
        assert (1, 0, True) in edges
