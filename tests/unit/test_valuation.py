"""Definition 4: the valuation function, case by case."""

import pytest

from repro.core.ast import Name, Var
from repro.core.valuation import GROUND, VariableValuation, valuate
from repro.errors import UnboundVariableError
from repro.lang.parser import parse_reference
from repro.oodb.database import Database
from repro.oodb.oid import NamedOid


def n(value):
    return NamedOid(value)


def val(db, text, **bindings):
    nu = VariableValuation({Var(k): v for k, v in bindings.items()})
    return valuate(parse_reference(text, check=False), db, nu)


@pytest.fixture
def db():
    db = Database()
    db.subclass("automobile", "vehicle")
    db.add_object("car1", classes=["automobile"],
                  scalars={"color": "red", "cylinders": 4})
    db.add_object("p1", classes=["employee"],
                  scalars={"age": 30},
                  sets={"vehicles": ["car1"], "assistants": ["a1", "a2"]})
    db.add_object("a1", scalars={"salary": 1000})
    db.add_object("a2", scalars={"salary": 2000})
    db.add_object("john")  # the bachelor
    return db


class TestSimpleReferences:
    def test_case1_variable(self, db):
        assert val(db, "X", X=n("p1")) == {n("p1")}

    def test_case1_unbound_raises(self, db):
        with pytest.raises(UnboundVariableError):
            val(db, "X")

    def test_case2_name(self, db):
        assert val(db, "p1") == {n("p1")}

    def test_unknown_name_still_denotes(self, db):
        # I_N is total: every name denotes an object.
        assert val(db, "ghost") == {n("ghost")}

    def test_paren_transparent(self, db):
        assert val(db, "(p1.age)") == val(db, "p1.age")


class TestPaths:
    def test_case3_scalar_path(self, db):
        assert val(db, "p1.age") == {n(30)}

    def test_case3_undefined_denotes_empty(self, db):
        # The paper: for a bachelor john, john.spouse denotes no object.
        assert val(db, "john.spouse") == frozenset()

    def test_case4_set_path(self, db):
        assert val(db, "p1..assistants") == {n("a1"), n("a2")}

    def test_scalar_method_over_set(self, db):
        # p1..assistants.salary = the set of salaries.
        assert val(db, "p1..assistants.salary") == {n(1000), n(2000)}

    def test_builtin_self(self, db):
        assert val(db, "p1.self") == {n("p1")}

    def test_no_nested_sets(self, db):
        # john..kids..kids: flat, not a set of sets (paper Section 5).
        program_db = Database()
        program_db.add_object("john", sets={"kids": ["k1", "k2"]})
        program_db.add_object("k1", sets={"kids": ["g1"]})
        program_db.add_object("k2", sets={"kids": ["g2", "g3"]})
        assert val(program_db, "john..kids..kids") == {
            n("g1"), n("g2"), n("g3"),
        }


class TestMolecules:
    def test_case5_isa(self, db):
        assert val(db, "car1 : automobile") == {n("car1")}
        assert val(db, "car1 : vehicle") == {n("car1")}  # transitive
        assert val(db, "p1 : automobile") == frozenset()

    def test_case6_scalar_filter(self, db):
        assert val(db, "p1[age -> 30]") == {n("p1")}
        assert val(db, "p1[age -> 31]") == frozenset()

    def test_case6_result_must_denote(self, db):
        # john.spouse denotes nothing, so the filter can never hold.
        assert val(db, "p1[age -> john.spouse]") == frozenset()

    def test_filters_restrict_sets(self, db):
        # Paper (4.2): assistants with salary 1000.
        assert val(db, "p1..assistants[salary -> 1000]") == {n("a1")}

    def test_case7_superset(self, db):
        db.add_object("p2", sets={"friends": ["a1", "a2", "x"]})
        assert val(db, "p2[friends ->> p1..assistants]") == {n("p2")}
        db.add_object("p3", sets={"friends": ["a1"]})
        assert val(db, "p3[friends ->> p1..assistants]") == frozenset()

    def test_case7_vacuous_superset(self, db):
        # john has no assistants: the inclusion holds for ANY subject,
        # even one with no friends at all (Definition 4, case 7).
        assert val(db, "p1[friends ->> john..assistants]") == {n("p1")}

    def test_case8_enum(self, db):
        db.add_object("p2", sets={"friends": ["a1", "a2"]})
        assert val(db, "p2[friends ->> {a1}]") == {n("p2")}
        assert val(db, "p2[friends ->> {a1, a2}]") == {n("p2")}
        assert val(db, "p2[friends ->> {a1, zz}]") == frozenset()

    def test_case8_nondenoting_elements_drop_out(self, db):
        # john.spouse does not denote; S = {a1} only.
        db.add_object("p2", sets={"friends": ["a1"]})
        assert val(db, "p2[friends ->> {a1, john.spouse}]") == {n("p2")}

    def test_case8_empty_enum_is_vacuous(self, db):
        assert val(db, "john[friends ->> {}]") == {n("john")}

    def test_empty_filter_list_checks_existence(self, db):
        # Paper Section 5: t0[] is true iff t0 denotes an object.
        assert val(db, "p1.age[]") == {n(30)}
        assert val(db, "john.spouse[]") == frozenset()

    def test_selector(self, db):
        assert val(db, "p1.age[X]", X=n(30)) == {n(30)}
        assert val(db, "p1.age[X]", X=n(31)) == frozenset()


class TestParameterisedMethods:
    def test_args_participate(self):
        db = Database()
        john = db.lookup_name("john")
        db.assert_scalar(n("salary"), john, (n(1994),), n(1000))
        assert val(db, "john.salary@(1994)") == {n(1000)}
        assert val(db, "john.salary@(1995)") == frozenset()

    def test_set_valued_argument(self):
        # Paper: p1.paidFor@(p1..vehicles) -- the set of prices.
        db = Database()
        p1 = db.lookup_name("p1")
        db.add_object("p1", sets={"vehicles": ["v1", "v2"]})
        db.assert_scalar(n("paidFor"), p1, (n("v1"),), n(100))
        db.assert_scalar(n("paidFor"), p1, (n("v2"),), n(200))
        assert val(db, "p1.paidFor@(p1..vehicles)") == {n(100), n(200)}


class TestFlagship:
    def test_example_2_1(self, db):
        db.add_object("p1", scalars={"city": "newYork"})
        result = val(
            db,
            "X : employee[age -> 30; city -> newYork]"
            "..vehicles : automobile[cylinders -> 4].color[Z]",
            X=n("p1"), Z=n("red"),
        )
        assert result == {n("red")}
