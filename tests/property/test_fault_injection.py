"""Property: random fault schedules never corrupt engine state.

Seeded :func:`~repro.testing.inject_random` plans fire
:class:`InjectedFault` at random engine and maintenance sites while
long-lived queries run over a mutating database.  Whatever the schedule
hits, three guarantees must hold at every step:

* a fault inside :meth:`Maintainer.apply` rolls the memoised result
  back to its pre-call state (all-or-nothing application),
* an unfaulted retry -- or the ``Query`` scratch fallback -- produces
  exactly the answers a never-faulted evaluation would, and
* the change-log arithmetic (``ChangeLog.in_sync``) stays provable,
  because every undo goes through the ordinary assert/retract API.

Faults restricted to maintenance sites must never escape ``Query.all``
at all: the memo entry is discarded and answers come from scratch.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.engine.fixpoint import Engine
from repro.lang.parser import parse_program
from repro.oodb.database import Database
from repro.query import Query
from repro.testing import InjectedFault, inject_random

pytestmark = pytest.mark.property

#: Recursive set rule (DRed + rederive), plus a scalar derived from the
#: recursion and a class test (counting, isa deltas).
RULES = """
    X[desc ->> {Y}] <- X[kids ->> {Y}].
    X[desc ->> {Y}] <- X..desc[kids ->> {Y}].
    X[reach -> 1] <- X[desc ->> {Y}], Y : leaf.
"""

QUERIES = ("peter[desc ->> {X}]", "X[desc ->> {Y}]", "X[reach -> V]")

SUBJECTS = ("peter", "tim", "mary", "tom", "ann")

MAINTAIN_SITES = (
    "maintain.apply", "maintain.overdelete", "maintain.counting",
    "maintain.dred", "maintain.rederive", "maintain.insert",
    "heads.replay",
)

ALL_SITES = MAINTAIN_SITES + (
    "engine.iteration", "engine.emit", "batch.step", "columnar.step",
)


def seeded_db():
    db = Database()
    kids = db.obj("kids")
    db.assert_set_member(kids, db.obj("peter"), (), db.obj("tim"))
    db.assert_set_member(kids, db.obj("peter"), (), db.obj("mary"))
    db.assert_set_member(kids, db.obj("mary"), (), db.obj("tom"))
    db.assert_set_member(kids, db.obj("tim"), (), db.obj("tom"))
    db.assert_isa(db.obj("tom"), db.obj("leaf"))
    return db


@st.composite
def mutations(draw, max_size=5):
    """Random kids-edge and leaf-membership mutations."""
    ops = st.one_of(
        st.tuples(st.just("add_member"), st.sampled_from(SUBJECTS),
                  st.sampled_from(SUBJECTS)),
        st.tuples(st.just("del_member"), st.sampled_from(SUBJECTS),
                  st.sampled_from(SUBJECTS)),
        st.tuples(st.just("add_isa"), st.sampled_from(SUBJECTS)),
        st.tuples(st.just("del_isa"), st.sampled_from(SUBJECTS)),
    )
    return draw(st.lists(ops, min_size=1, max_size=max_size))


def apply_mutation(db, op):
    kids = db.obj("kids")
    if op[0] == "add_member":
        db.assert_set_member(kids, db.obj(op[1]), (), db.obj(op[2]))
    elif op[0] == "del_member":
        db.retract_set_member(kids, db.obj(op[1]), (), db.obj(op[2]))
    elif op[0] == "add_isa":
        db.assert_isa(db.obj(op[1]), db.obj("leaf"))
    else:
        db.retract_isa(db.obj(op[1]), db.obj("leaf"))


def answer_keys(query, text):
    return [answer.sort_key() for answer in query.all(text)]


def set_state(db):
    return {key: members for key, members in db.sets.items() if members}


def snapshot(db):
    return set_state(db), dict(db.scalars.items())


@given(steps=mutations(), query=st.sampled_from(QUERIES),
       executor=st.sampled_from(("batch", "columnar")),
       magic=st.booleans(),
       seed=st.integers(0, 2 ** 16),
       rate=st.sampled_from((0.01, 0.05, 0.2)))
@settings(max_examples=200, deadline=None)
def test_faulted_cycles_never_corrupt_answers(
        steps, query, executor, magic, seed, rate):
    """The workhorse: query/mutate/query cycles under random faults.

    After every mutation the memoised query runs once inside a random
    fault plan; whether or not that attempt dies, the unfaulted retry
    must equal a from-scratch re-derivation, and the base change log
    must still explain every version bump.
    """
    db = seeded_db()
    log = db.begin_changes()
    program = parse_program(RULES)
    maintained = Query(db, program=program, magic=magic,
                       executor=executor)
    answer_keys(maintained, query)  # materialise + memoise, unfaulted
    for op in steps:
        apply_mutation(db, op)
        with inject_random(seed=seed, rate=rate, sites=ALL_SITES):
            try:
                answer_keys(maintained, query)
            except InjectedFault:
                pass  # the retry below must recover completely
        assert log.in_sync(db.data_version(), log.cursor())
        retry = answer_keys(maintained, query)
        scratch = Query(db, program=program, magic=magic,
                        executor=executor, incremental=False)
        assert retry == answer_keys(scratch, query)


@given(steps=mutations(max_size=4),
       seed=st.integers(0, 2 ** 16),
       rate=st.sampled_from((0.05, 0.3, 1.0)))
@settings(max_examples=100, deadline=None)
def test_apply_faults_roll_back_and_retry_matches_scratch(
        steps, seed, rate):
    """Direct ``Maintainer.apply``: all-or-nothing under any schedule."""
    db = seeded_db()
    log = db.begin_changes()
    program = parse_program(RULES)
    engine = Engine(db, program, record_support=True)
    result = engine.run()
    maintainer = engine.maintainer(result, db)
    cursor = log.cursor()
    for op in steps:
        apply_mutation(db, op)
    before = snapshot(result)
    faulted = False
    with inject_random(seed=seed, rate=rate, sites=MAINTAIN_SITES):
        try:
            report = maintainer.apply(log.since(cursor))
        except InjectedFault:
            faulted = True
    if faulted:
        # Rolled back: bit-identical to the pre-call state.
        assert snapshot(result) == before
        report = maintainer.apply(log.since(cursor))
    if report.applied:
        fresh = Engine(db, program).run()
        assert set_state(result) == set_state(fresh)
        assert dict(result.scalars.items()) \
            == dict(fresh.scalars.items())
    else:
        assert snapshot(result) == before  # fallback never half-writes


@given(steps=mutations(), magic=st.booleans(),
       seed=st.integers(0, 2 ** 16))
@settings(max_examples=60, deadline=None)
def test_query_degrades_gracefully_under_maintenance_faults(
        steps, magic, seed):
    """Maintenance-site faults never escape ``Query.all``: the memo is
    discarded and answers come from a scratch re-derivation."""
    db = seeded_db()
    db.begin_changes()
    program = parse_program(RULES)
    query = Query(db, program=program, magic=magic)
    answer_keys(query, "X[desc ->> {Y}]")
    for op in steps:
        apply_mutation(db, op)
        with inject_random(seed=seed, rate=0.5, sites=MAINTAIN_SITES):
            answers = answer_keys(query, "X[desc ->> {Y}]")
        scratch = Query(db, program=program, magic=magic,
                        incremental=False)
        assert answers == answer_keys(scratch, "X[desc ->> {Y}]")
