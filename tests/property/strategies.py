"""Hypothesis strategies for PathLog ASTs and databases.

The reference strategy builds only *well-formed* references by
construction (Definition 3), tracking scalarity through the recursion:
set-valued sub-references are offered exactly where the definition
allows them.
"""

from __future__ import annotations

import string

from hypothesis import strategies as st

from repro.core.ast import (
    IsaFilter,
    Molecule,
    Name,
    Paren,
    Path,
    Reference,
    ScalarFilter,
    SetEnumFilter,
    SetFilter,
    Var,
)
from repro.oodb.database import Database

#: Small pools keep the chance of joins/collisions high.
NAME_POOL = ("a", "b", "c", "kids", "boss", "color", "m1", "m2")
VALUE_POOL = (1, 2, 30, "red", "x y", "Zed")
VAR_POOL = ("X", "Y", "Z", "M")

#: Values mixing named objects (join keys) with int/string literals.
#: Every stored value is a NamedOid, but the literals never appear as
#: subjects, so columns over them are OID-servable without ever being
#: probe targets -- the shape that separates int-column slots from the
#: boxed fallback in the columnar executor.
MIXED_VALUE_POOL = VALUE_POOL + (7, 0, "blue")

#: Class names reserved for the deep isa chains below (disjoint from
#: the c1..c3 pool ``databases`` already uses).
CHAIN_CLASS_POOL = ("k0", "k1", "k2", "k3", "k4", "k5")

names = st.sampled_from(NAME_POOL).map(Name)
values = st.sampled_from(VALUE_POOL).map(Name)
variables = st.sampled_from(VAR_POOL).map(Var)

#: Arbitrary printable names exercise the quoting path of the printer.
wild_names = st.text(
    alphabet=string.ascii_letters + string.digits + " _\"\\",
    min_size=1, max_size=8,
).map(Name)

simple_scalars = st.one_of(names, values, variables)


def references(max_depth: int = 3, *, allow_variables: bool = True,
               set_valued: bool | None = None) -> st.SearchStrategy[Reference]:
    """Well-formed references; ``set_valued`` constrains the result kind.

    ``None`` means either kind.  With ``allow_variables=False`` the
    references are ground.
    """
    leaf_pool = [names, values] + ([variables] if allow_variables else [])
    leaves = st.one_of(*leaf_pool)

    def extend(children: st.SearchStrategy[Reference]
               ) -> st.SearchStrategy[Reference]:
        scalar_child = children.filter(_is_scalar)
        any_child = children

        scalar_method = st.one_of(
            leaves, scalar_child.map(Paren).filter(_is_scalar_paren)
        )

        paths = st.builds(
            Path,
            base=any_child,
            method=scalar_method,
            args=st.lists(any_child, max_size=2).map(tuple),
            set_valued=st.booleans(),
        )

        scalar_filters = st.builds(
            ScalarFilter,
            method=scalar_method,
            args=st.lists(scalar_child, max_size=1).map(tuple),
            result=scalar_child,
        )
        set_filters = st.builds(
            SetFilter,
            method=scalar_method,
            args=st.lists(scalar_child, max_size=1).map(tuple),
            result=any_child.filter(lambda r: not _is_scalar(r)),
        )
        enum_filters = st.builds(
            SetEnumFilter,
            method=scalar_method,
            args=st.lists(scalar_child, max_size=1).map(tuple),
            elements=st.lists(scalar_child, max_size=2).map(tuple),
        )
        isa_filters = st.builds(
            IsaFilter,
            cls=st.one_of(leaves,
                          scalar_child.map(Paren).filter(_is_scalar_paren)),
        )
        molecules = st.builds(
            Molecule,
            base=any_child,
            filters=st.lists(
                st.one_of(scalar_filters, set_filters, enum_filters),
                max_size=2,
            ).map(tuple),
        )
        isa_molecules = st.builds(
            Molecule, base=any_child,
            filters=isa_filters.map(lambda f: (f,)),
        )
        return st.one_of(children, paths, molecules, isa_molecules,
                         any_child.map(Paren))

    strategy = st.recursive(leaves, extend, max_leaves=max_depth * 4)
    if set_valued is True:
        return strategy.filter(lambda r: not _is_scalar(r))
    if set_valued is False:
        return strategy.filter(_is_scalar)
    return strategy


def _is_scalar(ref: Reference) -> bool:
    from repro.core.scalarity import is_scalar

    return is_scalar(ref)


def _is_scalar_paren(ref: Paren) -> bool:
    from repro.core.scalarity import is_scalar

    return is_scalar(ref)


@st.composite
def databases(draw, max_objects: int = 8) -> Database:
    """Small random databases over the shared name pools.

    Half the draws disable secondary indexes, so properties sweep the
    scan-based access paths (and compiled scan kernels) too.
    """
    db = Database(indexed=draw(st.booleans()))
    objects = draw(st.lists(st.sampled_from(NAME_POOL + ("p1", "p2", "p3")),
                            min_size=1, max_size=max_objects, unique=True))
    class_pool = ("c1", "c2", "c3")
    for obj in objects:
        classes = draw(st.lists(st.sampled_from(class_pool), max_size=2,
                                unique=True))
        scalar_methods = draw(st.lists(st.sampled_from(NAME_POOL),
                                       max_size=2, unique=True))
        scalars = {}
        for method in scalar_methods:
            scalars[method] = draw(st.sampled_from(VALUE_POOL + tuple(objects)))
        set_methods = draw(st.lists(st.sampled_from(NAME_POOL), max_size=2,
                                    unique=True))
        sets = {}
        for method in set_methods:
            sets[method] = draw(st.lists(st.sampled_from(tuple(objects)),
                                         min_size=1, max_size=3,
                                         unique=True))
        db.add_object(obj, classes=classes, scalars=scalars, sets=sets)
    # a couple of subclass edges (avoiding cycles by ordering)
    for low, high in (("c1", "c2"), ("c2", "c3")):
        if draw(st.booleans()):
            db.subclass(low, high)
    return db


@st.composite
def deep_databases(draw, max_objects: int = 8) -> Database:
    """Random databases with a deep isa chain threaded through them.

    Extends :func:`databases` with a subclass chain ``k0 < k1 < ...``
    of random length (3-6 classes, acyclic by construction) and
    attaches a few objects at random depths, so transitive class
    membership must propagate through several hops -- the shape that
    stresses hierarchy-driven kernels and isa filters.
    """
    db = draw(databases(max_objects=max_objects))
    length = draw(st.integers(min_value=3, max_value=len(CHAIN_CLASS_POOL)))
    chain = CHAIN_CLASS_POOL[:length]
    for low, high in zip(chain, chain[1:]):
        db.subclass(low, high)
    members = draw(st.lists(st.sampled_from(NAME_POOL + ("p1", "p2", "p3")),
                            max_size=4, unique=True))
    for name in members:
        db.assert_isa(db.obj(name), db.obj(draw(st.sampled_from(chain))))
    # Optionally bridge the chain into the c1..c3 lattice.
    if draw(st.booleans()):
        db.subclass("c1", chain[0])
    return db


#: One mutation: (op, method name, subject name, value name).  The op
#: pool is retraction-heavy (half the draws remove facts), so applying
#: a sequence exercises surrogate retirement, free-list reuse, and the
#: delete-and-rederive maintenance path rather than pure growth.
mutation_ops = st.tuples(
    st.sampled_from(("retract_scalar", "retract_set",
                     "assert_scalar", "assert_set",
                     "retract_scalar", "retract_set")),
    st.sampled_from(NAME_POOL),
    st.sampled_from(NAME_POOL + ("p1", "p2", "p3")),
    st.sampled_from(MIXED_VALUE_POOL + ("p1", "p2")),
)


def mutation_sequences(min_size: int = 1,
                       max_size: int = 12) -> st.SearchStrategy[list]:
    """Retract-heavy mutation sequences over the shared pools."""
    return st.lists(mutation_ops, min_size=min_size, max_size=max_size)


def apply_mutation(db: Database, op: tuple) -> None:
    """Apply one drawn mutation; scalar conflicts retract-then-assert.

    The scalar table is a partial function, so a drawn assertion that
    conflicts with a stored result models an *update*: the old fact is
    retracted first (both paths are real workloads; raising would just
    discard the example).
    """
    from repro.errors import ScalarConflictError

    kind, method_name, subject_name, value_name = op
    method = db.obj(method_name)
    subject = db.obj(subject_name)
    value = db.obj(value_name)
    if kind == "assert_scalar":
        try:
            db.assert_scalar(method, subject, (), value)
        except ScalarConflictError:
            db.retract_scalar(method, subject, ())
            db.assert_scalar(method, subject, (), value)
    elif kind == "retract_scalar":
        db.retract_scalar(method, subject, ())
    elif kind == "assert_set":
        db.assert_set_member(method, subject, (), value)
    else:
        db.retract_set_member(method, subject, (), value)
