"""Hypothesis strategies for PathLog ASTs and databases.

The reference strategy builds only *well-formed* references by
construction (Definition 3), tracking scalarity through the recursion:
set-valued sub-references are offered exactly where the definition
allows them.
"""

from __future__ import annotations

import string

from hypothesis import strategies as st

from repro.core.ast import (
    IsaFilter,
    Molecule,
    Name,
    Paren,
    Path,
    Reference,
    ScalarFilter,
    SetEnumFilter,
    SetFilter,
    Var,
)
from repro.oodb.database import Database

#: Small pools keep the chance of joins/collisions high.
NAME_POOL = ("a", "b", "c", "kids", "boss", "color", "m1", "m2")
VALUE_POOL = (1, 2, 30, "red", "x y", "Zed")
VAR_POOL = ("X", "Y", "Z", "M")

names = st.sampled_from(NAME_POOL).map(Name)
values = st.sampled_from(VALUE_POOL).map(Name)
variables = st.sampled_from(VAR_POOL).map(Var)

#: Arbitrary printable names exercise the quoting path of the printer.
wild_names = st.text(
    alphabet=string.ascii_letters + string.digits + " _\"\\",
    min_size=1, max_size=8,
).map(Name)

simple_scalars = st.one_of(names, values, variables)


def references(max_depth: int = 3, *, allow_variables: bool = True,
               set_valued: bool | None = None) -> st.SearchStrategy[Reference]:
    """Well-formed references; ``set_valued`` constrains the result kind.

    ``None`` means either kind.  With ``allow_variables=False`` the
    references are ground.
    """
    leaf_pool = [names, values] + ([variables] if allow_variables else [])
    leaves = st.one_of(*leaf_pool)

    def extend(children: st.SearchStrategy[Reference]
               ) -> st.SearchStrategy[Reference]:
        scalar_child = children.filter(_is_scalar)
        any_child = children

        scalar_method = st.one_of(
            leaves, scalar_child.map(Paren).filter(_is_scalar_paren)
        )

        paths = st.builds(
            Path,
            base=any_child,
            method=scalar_method,
            args=st.lists(any_child, max_size=2).map(tuple),
            set_valued=st.booleans(),
        )

        scalar_filters = st.builds(
            ScalarFilter,
            method=scalar_method,
            args=st.lists(scalar_child, max_size=1).map(tuple),
            result=scalar_child,
        )
        set_filters = st.builds(
            SetFilter,
            method=scalar_method,
            args=st.lists(scalar_child, max_size=1).map(tuple),
            result=any_child.filter(lambda r: not _is_scalar(r)),
        )
        enum_filters = st.builds(
            SetEnumFilter,
            method=scalar_method,
            args=st.lists(scalar_child, max_size=1).map(tuple),
            elements=st.lists(scalar_child, max_size=2).map(tuple),
        )
        isa_filters = st.builds(
            IsaFilter,
            cls=st.one_of(leaves,
                          scalar_child.map(Paren).filter(_is_scalar_paren)),
        )
        molecules = st.builds(
            Molecule,
            base=any_child,
            filters=st.lists(
                st.one_of(scalar_filters, set_filters, enum_filters),
                max_size=2,
            ).map(tuple),
        )
        isa_molecules = st.builds(
            Molecule, base=any_child,
            filters=isa_filters.map(lambda f: (f,)),
        )
        return st.one_of(children, paths, molecules, isa_molecules,
                         any_child.map(Paren))

    strategy = st.recursive(leaves, extend, max_leaves=max_depth * 4)
    if set_valued is True:
        return strategy.filter(lambda r: not _is_scalar(r))
    if set_valued is False:
        return strategy.filter(_is_scalar)
    return strategy


def _is_scalar(ref: Reference) -> bool:
    from repro.core.scalarity import is_scalar

    return is_scalar(ref)


def _is_scalar_paren(ref: Paren) -> bool:
    from repro.core.scalarity import is_scalar

    return is_scalar(ref)


@st.composite
def databases(draw, max_objects: int = 8) -> Database:
    """Small random databases over the shared name pools.

    Half the draws disable secondary indexes, so properties sweep the
    scan-based access paths (and compiled scan kernels) too.
    """
    db = Database(indexed=draw(st.booleans()))
    objects = draw(st.lists(st.sampled_from(NAME_POOL + ("p1", "p2", "p3")),
                            min_size=1, max_size=max_objects, unique=True))
    class_pool = ("c1", "c2", "c3")
    for obj in objects:
        classes = draw(st.lists(st.sampled_from(class_pool), max_size=2,
                                unique=True))
        scalar_methods = draw(st.lists(st.sampled_from(NAME_POOL),
                                       max_size=2, unique=True))
        scalars = {}
        for method in scalar_methods:
            scalars[method] = draw(st.sampled_from(VALUE_POOL + tuple(objects)))
        set_methods = draw(st.lists(st.sampled_from(NAME_POOL), max_size=2,
                                    unique=True))
        sets = {}
        for method in set_methods:
            sets[method] = draw(st.lists(st.sampled_from(tuple(objects)),
                                         min_size=1, max_size=3,
                                         unique=True))
        db.add_object(obj, classes=classes, scalars=scalars, sets=sets)
    # a couple of subclass edges (avoiding cycles by ordering)
    for low, high in (("c1", "c2"), ("c2", "c3")):
        if draw(st.booleans()):
            db.subclass(low, high)
    return db
