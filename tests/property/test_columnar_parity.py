"""Property: the int-surrogate columnar executor never changes semantics.

Random small programs over random databases -- including deep isa
chains and retract-heavy mutation sequences -- must reach identical
fixpoints whichever executor evaluates the rule bodies: int-surrogate
columns (the engine default), boxed batch columns, tuple-at-a-time
compiled kernels, or the interpreted dict-binding walk.  Random queries
must return identical answer sets (and ``objects()`` denotations,
pinning virtual-object identity) through all four ``solve`` modes, and
the invariant must survive ``incremental=True`` maintenance cycles
driven by retraction-heavy mutations.  Surrogates and mirror-first
writes change the *representation* -- int columns, lazy boxed
back-fill -- never the facts derived, the per-step row counters, or
the identity of the objects created.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.engine import Engine
from repro.engine.solve import EXECUTORS, solve
from repro.errors import PathLogError
from repro.flogic.flatten import flatten_conjunction
from repro.lang.parser import parse_program, parse_query
from repro.query import Query
from tests.property.strategies import (
    apply_mutation,
    databases,
    deep_databases,
    mutation_sequences,
)

pytestmark = pytest.mark.property

#: Rule templates write only fresh methods/classes, so derived facts
#: never conflict with stored ones; v5 creates virtual objects, d4
#: exercises the negation bridge, k-classes the deep isa chains.
RULE_POOL = (
    "X[d1 ->> {Y}] <- X[kids ->> {Y}].",
    "X[d1 ->> {Z}] <- X[d1 ->> {Y}], Y[kids ->> {Z}].",
    "X[d2 ->> {Y}] <- X[a ->> {Y}], Y : c1.",
    "X[d2 ->> {Y}] <- X[m1 -> Y].",
    "X[d3 -> 1] <- X[color -> red].",
    "X : c9 <- X[boss -> Y].",
    "X[d4 -> 1] <- X : c1, not X[kids ->> {K}].",
    "X.v5[tag -> 1] <- X[color -> red].",
    "X[d6 -> 1] <- X : k2.",
    "X[d7 ->> {Y}] <- X[kids ->> {Y}], Y : k4.",
)

QUERY_POOL = (
    "X[kids ->> {Y}]",
    "X : c1, X[color -> C]",
    "X[M ->> {V}]",
    "X[boss -> B], B[boss -> C]",
    "X[a ->> {Y}], not Y : c2",
    "X[d1 ->> {Y}], Y[d3 -> N]",
    "X[v5 -> S]",
    "X : k3",
)

REFERENCES = (
    "X[kids ->> {Y}].color",
    "X.v5",
    "X[d1 ->> {Y}]..d2",
)


def _facts(db):
    return (
        set(db.scalars.items()),
        {(key, frozenset(bucket)) for key, bucket in db.sets.items()},
        set(db.hierarchy.declared_edges()),
    )


def _answers(db, text, **kwargs):
    atoms = flatten_conjunction(parse_query(text))
    return {frozenset(b.items()) for b in solve(db, atoms, **kwargs)}


@given(
    db=deep_databases(),
    rules=st.lists(st.sampled_from(RULE_POOL), min_size=1, max_size=4,
                   unique=True),
    seminaive=st.booleans(),
)
@settings(max_examples=200, deadline=None)
def test_fixpoints_identical_across_all_executors(db, rules, seminaive):
    """The key differential test: all four executors, 200 examples."""
    program = parse_program("\n".join(rules))
    engines = [Engine(db, program, seminaive=seminaive, executor=executor)
               for executor in EXECUTORS]
    results = [_facts(engine.run()) for engine in engines]
    assert all(result == results[0] for result in results[1:])
    totals = [engine.stats.derived_total for engine in engines]
    assert all(total == totals[0] for total in totals[1:])
    firings = [engine.stats.firings for engine in engines]
    assert all(count == firings[0] for count in firings[1:])
    # Per-step row counters are defined identically for the columnar,
    # batch, and tuple-at-a-time executors.
    columnar, batch, compiled, _ = engines
    assert columnar.stats.tuples == batch.stats.tuples
    assert columnar.stats.tuples == compiled.stats.tuples


@given(
    db=databases(),
    rules=st.lists(st.sampled_from(RULE_POOL), min_size=1, max_size=3,
                   unique=True),
    query=st.sampled_from(QUERY_POOL),
)
@settings(max_examples=60, deadline=None)
def test_query_answers_identical_across_solve_executors(db, rules, query):
    materialised = Engine(db, parse_program("\n".join(rules))).run()
    answers = [_answers(materialised, query, executor=executor)
               for executor in EXECUTORS]
    assert all(result == answers[0] for result in answers[1:])


@given(
    db=deep_databases(),
    rules=st.lists(st.sampled_from(RULE_POOL), min_size=1, max_size=3,
                   unique=True),
    reference=st.sampled_from(REFERENCES),
)
@settings(max_examples=40, deadline=None)
def test_objects_identity_across_executors(db, rules, reference):
    """``objects()`` denotations agree *structurally*: equal OID sets
    mean the columnar run created the identical virtual objects."""
    program = parse_program("\n".join(rules))
    denotations = []
    for executor in EXECUTORS:
        query = Query(db, program=program, executor=executor)
        try:
            denotations.append(query.objects(reference))
        except PathLogError:
            return  # the random base data rejects this program
    assert all(result == denotations[0] for result in denotations[1:])


@given(
    db=databases(),
    rules=st.lists(st.sampled_from(RULE_POOL), min_size=1, max_size=3,
                   unique=True),
    query=st.sampled_from(QUERY_POOL),
    mutations=mutation_sequences(min_size=2, max_size=8),
)
@settings(max_examples=60, deadline=None)
def test_parity_holds_under_retract_heavy_mutations(db, rules, query,
                                                    mutations):
    """Incremental maintenance across executors under mutation storms.

    Every drawn sequence is retraction-heavy, so the maintained views
    repeatedly run the delete-and-rederive path while surrogates retire
    and (on re-assertion) come back through the interner -- the
    lifecycle most likely to desynchronise an int mirror from its boxed
    table.
    """
    db.begin_changes()
    program = parse_program("\n".join(rules))
    queries = [Query(db, program=program, incremental=True,
                     executor=executor) for executor in EXECUTORS]
    try:
        baselines = [q.all(query) for q in queries]
    except PathLogError:
        return  # the random base data rejects this program outright
    assert all(result == baselines[0] for result in baselines[1:])
    for op in mutations:
        apply_mutation(db, op)
        maintained = [q.all(query) for q in queries]
        scratch = Query(db, program=program, incremental=False).all(query)
        assert all(result == maintained[0] for result in maintained[1:])
        assert maintained[0] == scratch
