"""Engine properties: evaluation-strategy parity and closure correctness."""

import pytest
import networkx as nx
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.datasets.genealogy import closure_edges, desc_rules
from repro.engine import Engine
from repro.lang.parser import parse_program
from repro.oodb.database import Database
from repro.oodb.oid import NamedOid
from repro.oodb.serialize import dumps

pytestmark = pytest.mark.property


def n(value):
    return NamedOid(value)


@st.composite
def kid_forests(draw):
    """Random small forests as (facts-db, digraph)."""
    count = draw(st.integers(min_value=2, max_value=12))
    people = [f"q{i}" for i in range(count)]
    db = Database()
    graph = nx.DiGraph()
    graph.add_nodes_from(people)
    for child_index in range(1, count):
        if draw(st.booleans()):
            parent_index = draw(st.integers(min_value=0,
                                            max_value=child_index - 1))
            parent, child = people[parent_index], people[child_index]
            db.add_object(parent, sets={"kids": [child]})
            graph.add_edge(parent, child)
    for person in people:
        db.add_object(person)
    return db, graph


@given(forest=kid_forests())
@settings(max_examples=60, deadline=None)
def test_desc_equals_networkx_closure(forest):
    db, graph = forest
    out = Engine(db, desc_rules()).run()
    derived = {
        (subject.value, member.value)
        for (method, subject, _), members in out.sets.items()
        if method == n("desc")
        for member in members
    }
    assert derived == closure_edges(graph)


@given(forest=kid_forests())
@settings(max_examples=40, deadline=None)
def test_naive_and_seminaive_reach_the_same_fixpoint(forest):
    db, _ = forest
    fast = Engine(db, desc_rules(), seminaive=True).run()
    slow = Engine(db, desc_rules(), seminaive=False).run()
    assert dumps(fast) == dumps(slow)


RULE_POOL = [
    "X[d1 -> 1] <- X[kids ->> {Y}].",
    "X[d2 ->> {Y}] <- X[kids ->> {Y}], Y[kids ->> {Z}].",
    "Y : reachable <- X[kids ->> {Y}].",
    "X[d3 ->> {Z}] <- X[kids ->> {Y}], Y[kids ->> {Z}].",
    "X.shadow[of -> X] <- X : reachable.",
]


@given(forest=kid_forests(),
       picks=st.lists(st.sampled_from(RULE_POOL), min_size=1, max_size=4,
                      unique=True))
@settings(max_examples=40, deadline=None)
def test_strategy_parity_on_random_programs(forest, picks):
    db, _ = forest
    program = parse_program("\n".join(picks))
    fast = Engine(db, program, seminaive=True).run()
    slow = Engine(db, program, seminaive=False).run()
    assert dumps(fast) == dumps(slow)


@given(forest=kid_forests())
@settings(max_examples=30, deadline=None)
def test_evaluation_is_idempotent(forest):
    db, _ = forest
    once = Engine(db, desc_rules()).run()
    twice = Engine(once, desc_rules()).run()
    assert dumps(once) == dumps(twice)
