"""Property: compiled, interpreted-planner, and dynamic execution agree.

Random small programs over random databases must reach identical
fixpoints whichever executor evaluates the rule bodies (compiled
slot/kernel form, interpreted static plans, or the legacy dynamic
greedy order), and random queries over the materialised result must
return identical answer sets through all three solve modes.  This pins
the tentpole invariant: compilation changes the executor, never the
semantics.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.engine import Engine
from repro.engine.solve import solve
from repro.flogic.flatten import flatten_conjunction
from repro.lang.parser import parse_program, parse_query
from tests.property.strategies import databases

pytestmark = pytest.mark.property

#: Rule templates write only fresh methods (d1/d2/d3) or a fresh class
#: (c9), so derived facts never conflict with stored ones; d3's result
#: is constant, so the scalar-functionality invariant cannot trip.
RULE_POOL = (
    "X[d1 ->> {Y}] <- X[kids ->> {Y}].",
    "X[d1 ->> {Z}] <- X[d1 ->> {Y}], Y[kids ->> {Z}].",
    "X[d2 ->> {Y}] <- X[a ->> {Y}], Y : c1.",
    "X[d2 ->> {Y}] <- X[m1 -> Y].",
    "X[d3 -> 1] <- X[color -> red].",
    "X : c9 <- X[boss -> Y].",
)

#: Query templates; negation variables are always bound by the positive
#: part (or negation-local), so all three modes accept every query.
QUERY_POOL = (
    "X[kids ->> {Y}]",
    "X : c1, X[color -> C]",
    "X[M ->> {V}]",
    "X[boss -> B], B[boss -> C]",
    "X[a ->> {Y}], not Y : c2",
    "X[d1 ->> {Y}], Y[d3 -> N]",
)


def _facts(db):
    return (
        set(db.scalars.items()),
        {(key, frozenset(bucket)) for key, bucket in db.sets.items()},
        set(db.hierarchy.declared_edges()),
    )


def _answers(db, text, **kwargs):
    atoms = flatten_conjunction(parse_query(text))
    return {frozenset(b.items()) for b in solve(db, atoms, **kwargs)}


@given(
    db=databases(),
    rules=st.lists(st.sampled_from(RULE_POOL), min_size=1, max_size=4,
                   unique=True),
    seminaive=st.booleans(),
)
@settings(max_examples=80, deadline=None)
def test_fixpoints_identical_across_executors(db, rules, seminaive):
    program = parse_program("\n".join(rules))
    compiled = Engine(db, program, seminaive=seminaive, compiled=True)
    interpreted = Engine(db, program, seminaive=seminaive, compiled=False)
    dynamic = Engine(db, program, seminaive=seminaive, use_planner=False)
    results = [_facts(engine.run())
               for engine in (compiled, interpreted, dynamic)]
    assert results[0] == results[1] == results[2]
    assert (compiled.stats.derived_total
            == interpreted.stats.derived_total
            == dynamic.stats.derived_total)


@given(
    db=databases(),
    rules=st.lists(st.sampled_from(RULE_POOL), min_size=1, max_size=3,
                   unique=True),
    query=st.sampled_from(QUERY_POOL),
)
@settings(max_examples=80, deadline=None)
def test_query_answers_identical_across_solve_modes(db, rules, query):
    materialised = Engine(db, parse_program("\n".join(rules))).run()
    compiled = _answers(materialised, query)
    interpreted = _answers(materialised, query, compiled=False)
    dynamic = _answers(materialised, query, use_planner=False)
    assert compiled == interpreted == dynamic
