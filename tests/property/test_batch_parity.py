"""Property: the batched executor never changes semantics.

Random small programs over random databases must reach identical
fixpoints whichever executor evaluates the rule bodies -- batched
columns, tuple-at-a-time compiled kernels, or the interpreted
dict-binding walk -- and random queries must return identical answer
sets (and ``objects()`` denotations, pinning virtual-object identity)
through all three ``solve`` modes.  The invariant also holds through
``Query`` front doors under ``incremental=True`` maintenance cycles:
batching changes the execution schedule (breadth-first batches instead
of depth-first tuples), never the set of solutions, the facts derived,
or the identity of the objects created.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.engine import Engine
from repro.engine.solve import solve
from repro.errors import PathLogError
from repro.flogic.flatten import flatten_conjunction
from repro.lang.parser import parse_program, parse_query
from repro.query import Query
from tests.property.strategies import databases

EXECUTORS = ("batch", "compiled", "interpreted")

#: Rule templates write only fresh methods/classes, so derived facts
#: never conflict with stored ones; v5 creates virtual objects, d4
#: exercises the negation bridge, d5 the superset bridge.
RULE_POOL = (
    "X[d1 ->> {Y}] <- X[kids ->> {Y}].",
    "X[d1 ->> {Z}] <- X[d1 ->> {Y}], Y[kids ->> {Z}].",
    "X[d2 ->> {Y}] <- X[a ->> {Y}], Y : c1.",
    "X[d2 ->> {Y}] <- X[m1 -> Y].",
    "X[d3 -> 1] <- X[color -> red].",
    "X : c9 <- X[boss -> Y].",
    "X[d4 -> 1] <- X : c1, not X[kids ->> {K}].",
    "X.v5[tag -> 1] <- X[color -> red].",
)

QUERY_POOL = (
    "X[kids ->> {Y}]",
    "X : c1, X[color -> C]",
    "X[M ->> {V}]",
    "X[boss -> B], B[boss -> C]",
    "X[a ->> {Y}], not Y : c2",
    "X[d1 ->> {Y}], Y[d3 -> N]",
    "X[v5 -> S]",
)

REFERENCES = (
    "X[kids ->> {Y}].color",
    "X.v5",
    "X[d1 ->> {Y}]..d2",
)


def _facts(db):
    return (
        set(db.scalars.items()),
        {(key, frozenset(bucket)) for key, bucket in db.sets.items()},
        set(db.hierarchy.declared_edges()),
    )


def _answers(db, text, **kwargs):
    atoms = flatten_conjunction(parse_query(text))
    return {frozenset(b.items()) for b in solve(db, atoms, **kwargs)}


@given(
    db=databases(),
    rules=st.lists(st.sampled_from(RULE_POOL), min_size=1, max_size=4,
                   unique=True),
    seminaive=st.booleans(),
)
@settings(max_examples=60, deadline=None)
def test_fixpoints_identical_across_all_executors(db, rules, seminaive):
    program = parse_program("\n".join(rules))
    engines = [Engine(db, program, seminaive=seminaive, executor=executor)
               for executor in EXECUTORS]
    results = [_facts(engine.run()) for engine in engines]
    assert results[0] == results[1] == results[2]
    batch, tuple_, interp = engines
    assert (batch.stats.derived_total == tuple_.stats.derived_total
            == interp.stats.derived_total)
    assert batch.stats.firings == tuple_.stats.firings
    # Per-step row counters are defined identically for the batched and
    # tuple-at-a-time executors.
    assert batch.stats.tuples == tuple_.stats.tuples


@given(
    db=databases(),
    rules=st.lists(st.sampled_from(RULE_POOL), min_size=1, max_size=3,
                   unique=True),
    query=st.sampled_from(QUERY_POOL),
)
@settings(max_examples=60, deadline=None)
def test_query_answers_identical_across_solve_executors(db, rules, query):
    materialised = Engine(db, parse_program("\n".join(rules))).run()
    answers = [_answers(materialised, query, executor=executor)
               for executor in EXECUTORS]
    assert answers[0] == answers[1] == answers[2]


@given(
    db=databases(),
    rules=st.lists(st.sampled_from(RULE_POOL), min_size=1, max_size=3,
                   unique=True),
    reference=st.sampled_from(REFERENCES),
)
@settings(max_examples=40, deadline=None)
def test_objects_identity_across_executors(db, rules, reference):
    """``objects()`` denotations agree *structurally*: equal OID sets
    mean the batched run created the identical virtual objects."""
    program = parse_program("\n".join(rules))
    denotations = []
    for executor in EXECUTORS:
        query = Query(db, program=program, executor=executor)
        try:
            denotations.append(query.objects(reference))
        except PathLogError:
            return  # the random base data rejects this program
    assert denotations[0] == denotations[1] == denotations[2]


@given(
    db=databases(),
    rules=st.lists(st.sampled_from(RULE_POOL), min_size=1, max_size=3,
                   unique=True),
    query=st.sampled_from(QUERY_POOL),
    member=st.sampled_from(("a", "b", "p1")),
)
@settings(max_examples=40, deadline=None)
def test_parity_holds_under_incremental_maintenance(db, rules, query,
                                                    member):
    db.begin_changes()
    program = parse_program("\n".join(rules))
    queries = [Query(db, program=program, incremental=True,
                     executor=executor) for executor in EXECUTORS]
    try:
        baselines = [q.all(query) for q in queries]
    except PathLogError:
        return  # the random base data rejects this program outright
    assert baselines[0] == baselines[1] == baselines[2]
    kids, subject = db.obj("kids"), db.obj("p1")
    for mutate in (
        lambda: db.assert_set_member(kids, subject, (), db.obj(member)),
        lambda: db.retract_set_member(kids, subject, (), db.obj(member)),
    ):
        mutate()
        maintained = [q.all(query) for q in queries]
        scratch = Query(db, program=program, incremental=False).all(query)
        assert maintained[0] == maintained[1] == maintained[2] == scratch
