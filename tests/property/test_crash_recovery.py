"""Property: crash anywhere, recover to the committed prefix.

Random mutation/maintenance schedules run against a
:class:`~repro.oodb.checkpoint.DurableStore` while seeded crash
injection fires at every WAL/checkpoint/recover fault site.  Whatever
point the process "dies" at, recovery must produce **exactly** a state
the oracle allows:

* the last state whose ``commit()`` was acknowledged (the committed
  prefix), or
* that state plus the one in-flight batch -- only when the crash hit
  ``commit()`` *after* the commit marker may have reached the file
  (``wal.fsync``); a crash before the marker (``wal.append``,
  ``wal.commit``) must never surface partial entries.

Either way recovery lands on a batch boundary: facts, isa edges,
aliases, and the surrogate remap (``Query.objects`` parity) all match
the oracle, never a torn intermediate.  A double crash -- dying again
during the recovery's own checkpoint -- must still recover.

The suite uses ``tempfile.mkdtemp`` per example (NOT the ``tmp_path``
fixture: Hypothesis reuses the fixture across examples).
"""

import shutil
import tempfile
from pathlib import Path

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.oodb.checkpoint import DurableStore, recover
from repro.oodb.database import Database
from repro.query import Query
from repro.testing import (
    DURABILITY_SITES,
    InjectedFault,
    inject,
    inject_random,
    observe,
)

pytestmark = pytest.mark.property

SUBJECTS = ("peter", "tim", "mary", "tom")
METHODS = ("kids", "color", "boss")
VALUES = ("red", "blue", 1, 2)


@st.composite
def schedules(draw, max_size=8):
    """A schedule: batches of mutations punctuated by maintenance."""
    mutation = st.one_of(
        st.tuples(st.just("+isa"), st.sampled_from(SUBJECTS),
                  st.sampled_from(("employee", "leaf"))),
        st.tuples(st.just("-isa"), st.sampled_from(SUBJECTS),
                  st.sampled_from(("employee", "leaf"))),
        st.tuples(st.just("+scalar"), st.sampled_from(METHODS),
                  st.sampled_from(SUBJECTS), st.sampled_from(VALUES)),
        st.tuples(st.just("-scalar"), st.sampled_from(METHODS),
                  st.sampled_from(SUBJECTS)),
        st.tuples(st.just("+set"), st.sampled_from(METHODS),
                  st.sampled_from(SUBJECTS), st.sampled_from(SUBJECTS)),
        st.tuples(st.just("-set"), st.sampled_from(METHODS),
                  st.sampled_from(SUBJECTS), st.sampled_from(SUBJECTS)),
    )
    batch = st.lists(mutation, min_size=1, max_size=3)
    step = st.one_of(
        st.tuples(st.just("batch"), batch),
        st.tuples(st.just("checkpoint")),
        st.tuples(st.just("reopen")),
    )
    return draw(st.lists(step, min_size=1, max_size=max_size))


def apply_mutation(db: Database, op: tuple) -> None:
    tag = op[0]
    if tag == "+isa":
        db.assert_isa(db.obj(op[1]), db.obj(op[2]))
    elif tag == "-isa":
        db.retract_isa(db.obj(op[1]), db.obj(op[2]))
    elif tag == "+scalar":
        db.retract_scalar(db.obj(op[1]), db.obj(op[2]), ())
        db.assert_scalar(db.obj(op[1]), db.obj(op[2]), (), db.obj(op[3]))
    elif tag == "-scalar":
        db.retract_scalar(db.obj(op[1]), db.obj(op[2]), ())
    elif tag == "+set":
        db.assert_set_member(db.obj(op[1]), db.obj(op[2]), (),
                             db.obj(op[3]))
    elif tag == "-set":
        db.retract_set_member(db.obj(op[1]), db.obj(op[2]), (),
                              db.obj(op[3]))


def state_of(db: Database) -> tuple:
    """Canonical, comparable fact state: isa + scalars + sets + aliases."""
    return (
        frozenset(db.hierarchy.declared_edges()),
        frozenset(db.scalars.items()),
        frozenset((key, frozenset(members))
                  for key, members in db.sets.items()),
        frozenset(db._aliases.items()),
    )


class Driver:
    """Runs one schedule against a durable store, tracking the oracle.

    ``acceptable`` always holds the states a post-crash recovery may
    land on: the last acknowledged commit, plus (transiently, while a
    ``commit()`` whose marker may already be on disk is in flight) the
    batch being committed.
    """

    def __init__(self, data_dir: Path) -> None:
        self.data_dir = data_dir
        self.committed = state_of(Database())
        self.acceptable = {self.committed}

    def run(self, schedule) -> None:
        store = DurableStore.open(self.data_dir)
        try:
            for step in schedule:
                if step[0] == "batch":
                    for op in step[1]:
                        apply_mutation(store.database, op)
                    pending = state_of(store.database)
                    # The commit marker may hit the disk before the
                    # crash does: both outcomes are recoverable.
                    self.acceptable = {self.committed, pending}
                    store.commit()
                    self.committed = pending
                    self.acceptable = {pending}
                elif step[0] == "checkpoint":
                    store.checkpoint()
                elif step[0] == "reopen":
                    store.close()
                    store = DurableStore.open(self.data_dir)
        finally:
            # Leave the directory exactly as the "crash" did; a real
            # kill -9 would not flush either.  Only release the lease
            # so a later recover/open in the same process can proceed.
            store.wal._lease.release()

    def check(self) -> None:
        result = recover(self.data_dir)
        recovered = state_of(result.database)
        assert recovered in self.acceptable, (
            f"recovered state matches no committed boundary "
            f"(committed={self.committed in ([recovered])})")


def fresh_dir() -> Path:
    return Path(tempfile.mkdtemp(prefix="crashprop-"))


def cleanup(path: Path) -> None:
    shutil.rmtree(path, ignore_errors=True)


@settings(max_examples=30, deadline=None)
@given(schedule=schedules(), data=st.data())
def test_random_crash_recovers_to_committed_prefix(schedule, data):
    """Seeded random faulting across all durability sites."""
    data_dir = fresh_dir()
    try:
        seed = data.draw(st.integers(min_value=0, max_value=2**16))
        driver = Driver(data_dir)
        try:
            with inject_random(seed, rate=0.15, sites=DURABILITY_SITES):
                driver.run(schedule)
        except InjectedFault:
            pass
        driver.check()
    finally:
        cleanup(data_dir)


@settings(max_examples=12, deadline=None)
@given(schedule=schedules(max_size=5))
def test_kill_at_every_site_recovers(schedule):
    """Exhaustive: crash at each (site, hit) the schedule crosses."""
    control = fresh_dir()
    try:
        with observe() as plan:
            Driver(control).run(schedule)
    finally:
        cleanup(control)
    for site in DURABILITY_SITES:
        for hit in range(1, plan.counts.get(site, 0) + 1):
            data_dir = fresh_dir()
            try:
                driver = Driver(data_dir)
                try:
                    with inject(site, nth=hit):
                        driver.run(schedule)
                except InjectedFault:
                    pass
                driver.check()
            finally:
                cleanup(data_dir)


@settings(max_examples=10, deadline=None)
@given(schedule=schedules(max_size=4),
       site=st.sampled_from(("checkpoint.write", "checkpoint.rename",
                             "recover.replay")))
def test_double_crash_during_recovery_still_recovers(schedule, site):
    """Crash once mid-schedule, then AGAIN during the recovery's own
    checkpoint (or replay) -- the directory must still recover."""
    data_dir = fresh_dir()
    try:
        driver = Driver(data_dir)
        try:
            with inject_random(7, rate=0.3, sites=DURABILITY_SITES):
                driver.run(schedule)
        except InjectedFault:
            pass
        # Second crash: recovery itself dies at a checkpoint/replay
        # site (DurableStore.open re-checkpoints after recovering).
        try:
            with inject(site, nth=1):
                store = DurableStore.open(data_dir)
                store.wal._lease.release()
        except InjectedFault:
            pass
        driver.check()
    finally:
        cleanup(data_dir)


@settings(max_examples=10, deadline=None)
@given(schedule=schedules(max_size=5))
def test_surrogate_remap_parity_after_recovery(schedule):
    """``Query.objects`` answers identically over the recovered
    database -- the OID interner's surrogate remap rebuilds correctly
    from the snapshot + WAL replay."""
    data_dir = fresh_dir()
    try:
        driver = Driver(data_dir)
        driver.run(schedule)
        live_store = DurableStore.open(data_dir)
        live = live_store.database
        live_store.close()
        result = recover(data_dir)
        recovered = result.database
        assert state_of(live) == state_of(recovered)
        for subject in SUBJECTS:
            for method in METHODS:
                ref = f"{subject}[{method} ->> {{X}}]"
                assert Query(live).objects(f"{subject}.{method}") == \
                    Query(recovered).objects(f"{subject}.{method}"), ref
        assert Query(live).objects("X : employee") == \
            Query(recovered).objects("X : employee")
    finally:
        cleanup(data_dir)
