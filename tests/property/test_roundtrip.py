"""Property: the pretty-printer and parser are exact inverses."""

import pytest
from hypothesis import given, settings

from repro.core.pretty import to_text
from repro.core.wellformed import check_well_formed
from repro.lang.parser import parse_reference
from tests.property.strategies import references, wild_names

pytestmark = pytest.mark.property


@given(ref=references(max_depth=4))
@settings(max_examples=300)
def test_parse_inverts_print(ref):
    check_well_formed(ref)  # strategy invariant
    assert parse_reference(to_text(ref), check=False) == ref


@given(ref=references(max_depth=4))
@settings(max_examples=150)
def test_printing_is_stable(ref):
    once = to_text(ref)
    assert to_text(parse_reference(once, check=False)) == once


@given(name=wild_names)
def test_arbitrary_names_survive_quoting(name):
    assert parse_reference(to_text(name), check=False) == name
