"""Substrate properties: hierarchy laws and serialisation round-trips."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import PathLogError
from repro.oodb.hierarchy import ClassHierarchy
from repro.oodb.oid import NamedOid
from repro.oodb.serialize import dumps, loads
from tests.property.strategies import databases

pytestmark = pytest.mark.property


def n(value):
    return NamedOid(value)


edge_lists = st.lists(
    st.tuples(st.integers(0, 8), st.integers(0, 8)),
    max_size=16,
)


@given(edges=edge_lists)
@settings(max_examples=150)
def test_hierarchy_stays_a_strict_partial_order(edges):
    h = ClassHierarchy()
    for low, high in edges:
        try:
            h.declare(n(low), n(high))
        except PathLogError:
            pass  # cycle rejected -- that's the invariant at work
    objects = h.objects()
    for a in objects:
        # irreflexive
        assert not h.isa(a, a)
        for b in h.ancestors(a):
            # antisymmetric
            assert not h.isa(b, a)
            # transitive: ancestors of ancestors are ancestors
            assert h.ancestors(b) <= h.ancestors(a)


@given(edges=edge_lists)
@settings(max_examples=100)
def test_members_and_ancestors_are_converses(edges):
    h = ClassHierarchy()
    for low, high in edges:
        try:
            h.declare(n(low), n(high))
        except PathLogError:
            pass
    for obj in h.objects():
        for cls in h.ancestors(obj):
            assert obj in h.descendants(cls)


@given(db=databases())
@settings(max_examples=80, deadline=None)
def test_serialise_round_trip(db):
    text = dumps(db)
    restored = loads(text)
    assert dumps(restored) == text
    assert restored.universe() == db.universe()
    assert dict(restored.scalars.items()) == dict(db.scalars.items())
    assert dict(restored.sets.items()) == dict(db.sets.items())


@given(db=databases())
@settings(max_examples=50, deadline=None)
def test_clone_equals_original(db):
    assert dumps(db.clone()) == dumps(db)
