"""Property: Definition 4/5 agree with the flatten-and-solve pipeline.

For ground well-formed references, the direct valuation's entailment
verdict must equal the existence of a solution for the flattened atom
conjunction, and the denoted object set must equal the set of result
bindings.  This ties the paper's declarative semantics to the engine's
operational one on the full reference language (supersets included).
"""

import pytest
from hypothesis import given, settings

from repro.core.ast import Name, Var
from repro.core.valuation import GROUND, valuate
from repro.engine.solve import solve
from repro.flogic.flatten import flatten_reference
from tests.property.strategies import databases, references

pytestmark = pytest.mark.property


def engine_objects(db, ref):
    flattened = flatten_reference(ref)
    found = set()
    for binding in solve(db, flattened.atoms):
        term = flattened.term
        if isinstance(term, Var):
            found.add(binding[term])
        else:
            found.add(db.lookup_name(term.value))
    return frozenset(found)


@given(db=databases(), ref=references(max_depth=3, allow_variables=False))
@settings(max_examples=250, deadline=None)
def test_entailment_agrees(db, ref):
    direct = bool(valuate(ref, db, GROUND))
    operational = bool(engine_objects(db, ref))
    assert direct == operational


@given(db=databases(), ref=references(max_depth=3, allow_variables=False))
@settings(max_examples=250, deadline=None)
def test_denotation_agrees(db, ref):
    assert valuate(ref, db, GROUND) == engine_objects(db, ref)
