"""Property: demand-driven evaluation never changes query answers.

Random small programs over random databases, queried through the
``Query(db, program=...)`` front door: ``magic=True`` (demand-driven),
``magic=False`` (materialise the full fixpoint), and the interpreted
executor (``compiled=False``) must return identical answer sets for
every query.  This pins the tentpole invariant of the magic-set
rewrite: guarding rules with demand atoms restricts *work*, never
*answers* -- including when parts of the program fall back to full
evaluation (negation, superset sources, recursive demand).

Rule heads write only fresh methods (``d1``..``d6``) or constant
results, so derived facts never conflict with stored scalar facts.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.lang.parser import parse_program
from repro.query import Query
from tests.property.strategies import databases

pytestmark = pytest.mark.property

RULE_POOL = (
    # plain projection of a base set method
    "X[d1 ->> {Y}] <- X[kids ->> {Y}].",
    # recursion: transitive closure over kids, demanded both ways
    "X[d1 ->> {Z}] <- X[d1 ->> {Y}], Y[kids ->> {Z}].",
    # scalar derived method with a join
    "X[d2 -> 1] <- X[a ->> {Y}], Y[color -> red].",
    # derived-from-derived chain
    "X[d3 ->> {Y}] <- X[d1 ->> {Y}], Y : c1.",
    # negation: d4 needs the *complete* kids relation (fallback path)
    "X[d4 -> yes] <- X : c1, not X[kids ->> {K}].",
    # body superset source (fallback path for `a`)
    "X[d5 -> yes] <- X[kids ->> p1..a].",
    # isa-defining rule (fallback path for isa readers)
    "X : c9 <- X[boss -> Y].",
)

#: Selective queries: constants at subject or result positions drive
#: the adornments; unbound and mixed forms sweep the fallback paths.
QUERY_POOL = (
    "p1[d1 ->> {Y}]",
    "X[d1 ->> {b}]",
    "p2[d1 ->> {Y}], Y[color -> C]",
    "a[d2 -> V]",
    "p1[d3 ->> {Y}]",
    "X[d4 -> F]",
    "p1[d5 -> F]",
    "X : c9",
    "X[d1 ->> {Y}]",
)


def _answers(db, program, query, **kwargs):
    rows = Query(db, program=program, **kwargs).all(query)
    return [row.sort_key() for row in rows]


@given(
    db=databases(),
    rules=st.lists(st.sampled_from(RULE_POOL), min_size=1, max_size=5,
                   unique=True),
    query=st.sampled_from(QUERY_POOL),
)
@settings(max_examples=60, deadline=None)
def test_magic_full_and_interpreted_answers_identical(db, rules, query):
    program = parse_program("\n".join(rules))
    magic = _answers(db, program, query, magic=True)
    full = _answers(db, program, query, magic=False)
    interpreted = _answers(db, program, query, magic=True, compiled=False)
    full_interpreted = _answers(db, program, query, magic=False,
                                compiled=False)
    assert magic == full == interpreted == full_interpreted


@given(
    db=databases(),
    rules=st.lists(st.sampled_from(RULE_POOL), min_size=1, max_size=4,
                   unique=True),
    query=st.sampled_from(QUERY_POOL),
)
@settings(max_examples=40, deadline=None)
def test_demand_never_derives_more_than_full(db, rules, query):
    from repro.engine import Engine
    from repro.engine.magic import MAGIC_PREFIX, DemandEngine
    from repro.oodb.oid import NamedOid

    program = parse_program("\n".join(rules))
    full_engine = Engine(db, program)
    full_db = full_engine.run()
    demand = DemandEngine(db, program, query)
    demand_db = demand.run()
    # Every non-magic fact derived on demand exists in the full fixpoint.
    full_scalars = set(full_db.scalars.items())
    for key, value in demand_db.scalars.items():
        assert (key, value) in full_scalars
    full_sets = {(key, member) for key, bucket in full_db.sets.items()
                 for member in bucket}
    for key, bucket in demand_db.sets.items():
        method = key[0]
        if isinstance(method, NamedOid) \
                and str(method.value).startswith(MAGIC_PREFIX):
            continue
        for member in bucket:
            assert (key, member) in full_sets
