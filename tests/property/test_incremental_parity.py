"""Property: incremental maintenance never changes query answers.

Random insert/delete sequences over random databases, queried through
long-lived ``Query(db, program=...)`` instances after every mutation:
the incrementally maintained answers (both ``magic=False`` full
materialisation and ``magic=True`` demand evaluation) must equal a
from-scratch re-derivation at each step -- including when maintenance
falls back (negation, superset sources, isa deletions, virtual-creating
heads) and including the identity of virtual objects in the answers
(OIDs compare structurally, so equal sort keys mean the maintained
result reuses the same ``VirtualOid`` a fresh run would create).
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import PathLogError
from repro.lang.parser import parse_program
from repro.query import Query
from tests.property.strategies import databases

pytestmark = pytest.mark.property

#: Rules sweep counting (non-recursive d2/d6), DRed (recursive d1),
#: derived-from-derived (d3), stratified negation (d4), and a
#: virtual-creating path head (v5) -- the last two exercise the
#: fallback-to-rebuild path under the relevant mutations.
RULES = """
    p1[d1 ->> {b}].
    a[d2 -> 1].
    X[d1 ->> {Y}] <- X[kids ->> {Y}].
    X[d1 ->> {Z}] <- X[d1 ->> {Y}], Y[kids ->> {Z}].
    X[d2 -> 1] <- X[a ->> {Y}], Y[color -> red].
    X[d3 ->> {Y}] <- X[d1 ->> {Y}], Y : c1.
    X[d4 -> 1] <- X : c1, not X[kids ->> {K}].
    X.v5[tag -> 1] <- X[color -> red].
    X : c9 <- X[boss -> Y].
"""

QUERIES = (
    "p1[d1 ->> {Y}]",
    "X[d1 ->> {Y}]",
    "X[d2 -> V]",
    "X[d3 ->> {Y}]",
    "X[d4 -> V]",
    "X[v5 -> S]",
    "X : c9",
)

SUBJECTS = ("p1", "p2", "a", "b", "c")
VALUES = ("red", "blue", "p1", "b", 1)


@st.composite
def mutations(draw, min_size=1, max_size=6):
    """A sequence of base-fact mutations over the shared name pools."""
    ops = st.one_of(
        st.tuples(st.just("set_scalar"), st.sampled_from(SUBJECTS),
                  st.sampled_from(("color", "boss")),
                  st.sampled_from(VALUES)),
        st.tuples(st.just("del_scalar"), st.sampled_from(SUBJECTS),
                  st.sampled_from(("color", "boss"))),
        st.tuples(st.just("add_member"), st.sampled_from(SUBJECTS),
                  st.sampled_from(("kids", "a")),
                  st.sampled_from(SUBJECTS)),
        st.tuples(st.just("del_member"), st.sampled_from(SUBJECTS),
                  st.sampled_from(("kids", "a")),
                  st.sampled_from(SUBJECTS)),
        st.tuples(st.just("add_isa"), st.sampled_from(SUBJECTS),
                  st.sampled_from(("c1", "c2"))),
        st.tuples(st.just("del_isa"), st.sampled_from(SUBJECTS),
                  st.sampled_from(("c1", "c2"))),
    )
    return draw(st.lists(ops, min_size=min_size, max_size=max_size))


def apply_mutation(db, op):
    kind = op[0]
    if kind == "set_scalar":
        method, subject = db.obj(op[2]), db.obj(op[1])
        db.retract_scalar(method, subject, ())
        db.assert_scalar(method, subject, (), db.obj(op[3]))
    elif kind == "del_scalar":
        db.retract_scalar(db.obj(op[2]), db.obj(op[1]), ())
    elif kind == "add_member":
        db.assert_set_member(db.obj(op[2]), db.obj(op[1]), (),
                             db.obj(op[3]))
    elif kind == "del_member":
        db.retract_set_member(db.obj(op[2]), db.obj(op[1]), (),
                              db.obj(op[3]))
    elif kind == "add_isa":
        db.assert_isa(db.obj(op[1]), db.obj(op[2]))
    else:
        db.retract_isa(db.obj(op[1]), db.obj(op[2]))


def answer_keys(query, text):
    return [answer.sort_key() for answer in query.all(text)]


@given(db=databases(), steps=mutations(),
       query=st.sampled_from(QUERIES))
@settings(max_examples=40, deadline=None)
def test_maintained_answers_equal_scratch_after_every_mutation(
        db, steps, query):
    db.begin_changes()
    program = parse_program(RULES)
    maintained = Query(db, program=program, magic=False)
    interpreted = Query(db, program=program, magic=False, compiled=False)
    demand = Query(db, program=program, magic=True)
    try:
        answer_keys(maintained, query)
        answer_keys(interpreted, query)
        answer_keys(demand, query)
    except PathLogError:
        return  # the random base data rejects this program outright
    for op in steps:
        try:
            apply_mutation(db, op)
        except PathLogError:
            continue  # e.g. an isa edge that would close a cycle
        scratch = Query(db, program=program, magic=False,
                        incremental=False)
        try:
            expected = answer_keys(scratch, query)
        except PathLogError:
            # The mutated base now conflicts with the rules (e.g. a
            # scalar conflict inside derivation); the maintained
            # queries must reject it the same way.
            continue
        assert answer_keys(maintained, query) == expected
        assert answer_keys(interpreted, query) == expected
        assert answer_keys(demand, query) == expected


@given(db=databases(), steps=mutations(max_size=4))
@settings(max_examples=25, deadline=None)
def test_maintained_objects_preserve_virtual_identity(db, steps):
    """`objects()` over a virtual-creating reference, after mutations."""
    db.begin_changes()
    program = parse_program(RULES)
    maintained = Query(db, program=program, magic=False)
    reference = "p1.v5"
    try:
        maintained.objects(reference)
    except PathLogError:
        return
    for op in steps:
        try:
            apply_mutation(db, op)
        except PathLogError:
            continue
        scratch = Query(db, program=program, magic=False,
                        incremental=False)
        try:
            expected = scratch.objects(reference)
        except PathLogError:
            continue
        assert maintained.objects(reference) == expected
